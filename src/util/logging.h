#ifndef OVS_UTIL_LOGGING_H_
#define OVS_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ovs {

/// Severity levels for LOG(). FATAL aborts the process after logging.
enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

namespace internal_logging {

/// Stream-style log message collector. The message is emitted (and, for
/// FATAL, the process aborted) in the destructor, which lets call sites use
/// `LOG(INFO) << "x=" << x;` syntax with no allocation on the fast path.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line)
      : severity_(severity), file_(file), line_(line) {}

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    std::ostream& os = severity_ >= LogSeverity::kWarning ? std::cerr : std::clog;
    os << SeverityTag() << " " << Basename(file_) << ":" << line_ << "] "
       << stream_.str() << std::endl;
    if (severity_ == LogSeverity::kFatal) std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  const char* SeverityTag() const {
    switch (severity_) {
      case LogSeverity::kInfo:
        return "I";
      case LogSeverity::kWarning:
        return "W";
      case LogSeverity::kError:
        return "E";
      case LogSeverity::kFatal:
        return "F";
    }
    return "?";
  }

  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Helper that swallows the log stream so `CHECK(cond) << msg` compiles to
/// nothing when the condition holds.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace ovs

#define OVS_LOG_INFO \
  ::ovs::internal_logging::LogMessage(::ovs::LogSeverity::kInfo, __FILE__, __LINE__)
#define OVS_LOG_WARNING                                                        \
  ::ovs::internal_logging::LogMessage(::ovs::LogSeverity::kWarning, __FILE__, \
                                      __LINE__)
#define OVS_LOG_ERROR \
  ::ovs::internal_logging::LogMessage(::ovs::LogSeverity::kError, __FILE__, __LINE__)
#define OVS_LOG_FATAL \
  ::ovs::internal_logging::LogMessage(::ovs::LogSeverity::kFatal, __FILE__, __LINE__)

#define LOG(severity) OVS_LOG_##severity.stream()

/// CHECK aborts with a message when `condition` is false. Used for programmer
/// invariants (not recoverable errors — those return Status).
#define CHECK(condition)                                 \
  (condition) ? (void)0                                  \
              : ::ovs::internal_logging::LogMessageVoidify() & \
                    OVS_LOG_FATAL.stream() << "Check failed: " #condition " "

#define OVS_CHECK_OP(name, op, a, b)                                          \
  CHECK((a)op(b)) << "(" << #a << " " << #op << " " << #b << "): " << (a) \
                  << " vs " << (b) << " "

#define CHECK_EQ(a, b) OVS_CHECK_OP(EQ, ==, a, b)
#define CHECK_NE(a, b) OVS_CHECK_OP(NE, !=, a, b)
#define CHECK_LT(a, b) OVS_CHECK_OP(LT, <, a, b)
#define CHECK_LE(a, b) OVS_CHECK_OP(LE, <=, a, b)
#define CHECK_GT(a, b) OVS_CHECK_OP(GT, >, a, b)
#define CHECK_GE(a, b) OVS_CHECK_OP(GE, >=, a, b)

#endif  // OVS_UTIL_LOGGING_H_
