#ifndef OVS_UTIL_LOGGING_H_
#define OVS_UTIL_LOGGING_H_

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

namespace ovs {

/// Severity levels for LOG(). FATAL aborts the process after logging.
enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

namespace internal_logging {

/// Process-wide minimum severity that LOG() emits. Initialized once from the
/// OVS_MIN_LOG_LEVEL environment variable (name "INFO"/"WARNING"/"ERROR"/
/// "FATAL" or numeric 0-3); defaults to INFO. Clamped to FATAL so fatal
/// messages can never be filtered out.
inline std::atomic<int>& MinLogLevelStorage() {
  static std::atomic<int> level = [] {
    int v = static_cast<int>(LogSeverity::kInfo);
    if (const char* env = std::getenv("OVS_MIN_LOG_LEVEL")) {
      if (std::strcmp(env, "INFO") == 0) {
        v = 0;
      } else if (std::strcmp(env, "WARNING") == 0) {
        v = 1;
      } else if (std::strcmp(env, "ERROR") == 0) {
        v = 2;
      } else if (std::strcmp(env, "FATAL") == 0) {
        v = 3;
      } else if (env[0] >= '0' && env[0] <= '3' && env[1] == '\0') {
        v = env[0] - '0';
      }
    }
    return v;
  }();
  return level;
}

/// True when a message of `severity` passes the current filter. FATAL always
/// logs (the level cannot exceed kFatal).
inline bool ShouldLog(LogSeverity severity) {
  return static_cast<int>(severity) >=
         MinLogLevelStorage().load(std::memory_order_relaxed);
}

}  // namespace internal_logging

/// Overrides the minimum LOG severity at runtime (test hook; production code
/// sets OVS_MIN_LOG_LEVEL instead). FATAL is never filtered.
inline void SetMinLogLevel(LogSeverity severity) {
  internal_logging::MinLogLevelStorage().store(
      static_cast<int>(severity) > static_cast<int>(LogSeverity::kFatal)
          ? static_cast<int>(LogSeverity::kFatal)
          : static_cast<int>(severity),
      std::memory_order_relaxed);
}

/// The current minimum LOG severity.
inline LogSeverity GetMinLogLevel() {
  return static_cast<LogSeverity>(
      internal_logging::MinLogLevelStorage().load(std::memory_order_relaxed));
}

namespace internal_logging {

/// Stream-style log message collector. The message is emitted (and, for
/// FATAL, the process aborted) in the destructor, which lets call sites use
/// `LOG(INFO) << "x=" << x;` syntax with no allocation on the fast path.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line)
      : severity_(severity), file_(file), line_(line) {}

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    std::ostream& os = severity_ >= LogSeverity::kWarning ? std::cerr : std::clog;
    os << SeverityTag() << " " << Basename(file_) << ":" << line_ << "] "
       << stream_.str() << std::endl;
    if (severity_ == LogSeverity::kFatal) std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  const char* SeverityTag() const {
    switch (severity_) {
      case LogSeverity::kInfo:
        return "I";
      case LogSeverity::kWarning:
        return "W";
      case LogSeverity::kError:
        return "E";
      case LogSeverity::kFatal:
        return "F";
    }
    return "?";
  }

  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Helper that swallows the log stream so `CHECK(cond) << msg` compiles to
/// nothing when the condition holds.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace ovs

#define OVS_LOG_INFO \
  ::ovs::internal_logging::LogMessage(::ovs::LogSeverity::kInfo, __FILE__, __LINE__)
#define OVS_LOG_WARNING                                                        \
  ::ovs::internal_logging::LogMessage(::ovs::LogSeverity::kWarning, __FILE__, \
                                      __LINE__)
#define OVS_LOG_ERROR \
  ::ovs::internal_logging::LogMessage(::ovs::LogSeverity::kError, __FILE__, __LINE__)
#define OVS_LOG_FATAL \
  ::ovs::internal_logging::LogMessage(::ovs::LogSeverity::kFatal, __FILE__, __LINE__)

#define OVS_SEVERITY_INFO ::ovs::LogSeverity::kInfo
#define OVS_SEVERITY_WARNING ::ovs::LogSeverity::kWarning
#define OVS_SEVERITY_ERROR ::ovs::LogSeverity::kError
#define OVS_SEVERITY_FATAL ::ovs::LogSeverity::kFatal

/// Statement-form logging with runtime severity filtering: when the message
/// is below the OVS_MIN_LOG_LEVEL threshold, the LogMessage (and every
/// streamed operand) is never constructed. The ternary keeps the usual
/// `LOG(INFO) << x;` syntax; both branches are void expressions.
#define LOG(severity)                                           \
  !::ovs::internal_logging::ShouldLog(OVS_SEVERITY_##severity)  \
      ? (void)0                                                 \
      : ::ovs::internal_logging::LogMessageVoidify() &          \
            OVS_LOG_##severity.stream()

/// CHECK aborts with a message when `condition` is false. Used for programmer
/// invariants (not recoverable errors — those return Status).
#define CHECK(condition)                                 \
  (condition) ? (void)0                                  \
              : ::ovs::internal_logging::LogMessageVoidify() & \
                    OVS_LOG_FATAL.stream() << "Check failed: " #condition " "

#define OVS_CHECK_OP(name, op, a, b)                                          \
  CHECK((a)op(b)) << "(" << #a << " " << #op << " " << #b << "): " << (a) \
                  << " vs " << (b) << " "

#define CHECK_EQ(a, b) OVS_CHECK_OP(EQ, ==, a, b)
#define CHECK_NE(a, b) OVS_CHECK_OP(NE, !=, a, b)
#define CHECK_LT(a, b) OVS_CHECK_OP(LT, <, a, b)
#define CHECK_LE(a, b) OVS_CHECK_OP(LE, <=, a, b)
#define CHECK_GT(a, b) OVS_CHECK_OP(GT, >, a, b)
#define CHECK_GE(a, b) OVS_CHECK_OP(GE, >=, a, b)

#endif  // OVS_UTIL_LOGGING_H_
