#ifndef OVS_UTIL_STRING_UTIL_H_
#define OVS_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace ovs {

/// Splits `text` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> StrSplit(std::string_view text, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Fixed-precision float formatting ("%.*f").
std::string FormatDouble(double value, int precision);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace ovs

#endif  // OVS_UTIL_STRING_UTIL_H_
