#ifndef OVS_UTIL_THREAD_POOL_H_
#define OVS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ovs {

/// Fixed-size worker pool backing ParallelFor. A pool of size N provides
/// N-way parallelism: N-1 resident workers plus the calling thread, which
/// always participates in its own parallel regions (so a pool of size 1 has
/// no workers and every ParallelFor runs inline).
///
/// Determinism contract: ParallelFor partitions [begin, end) into contiguous
/// blocks and each block is executed by exactly one thread, in ascending
/// index order within the block. Callers that write disjoint outputs per
/// index (the only usage pattern in this codebase) therefore produce
/// bitwise-identical results for every pool size, including 1.
class ThreadPool {
 public:
  /// Creates a pool providing `num_threads`-way parallelism (clamped to
  /// >= 1). `num_threads == 1` means fully serial.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + the calling thread).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Cumulative activity counters since construction. The pool maintains
  /// these itself with plain relaxed atomics so ovs_util carries no
  /// dependency on the obs layer; obs::Session publishes per-run deltas
  /// into the metrics registry.
  struct Stats {
    /// Worker-side task closures executed (helper dispatches; the calling
    /// thread's own chunk-running does not queue a task).
    uint64_t tasks_run = 0;
    /// Chunks executed across all ParallelFor calls (a serial fast-path
    /// call counts as one chunk).
    uint64_t chunks_run = 0;
    /// ParallelFor invocations on this pool (including serial fast paths).
    uint64_t parallel_fors = 0;
    /// Total nanoseconds workers spent blocked waiting for work.
    uint64_t idle_ns = 0;
  };
  Stats stats() const;

  /// Applies `fn(lo, hi)` over contiguous chunks covering [begin, end).
  /// Chunks are at most `grain` indices wide (grain < 1 is treated as 1).
  /// Runs inline (one call with the full range) when the range fits in a
  /// single chunk, when the pool is serial, or when called from inside
  /// another ParallelFor on this pool (nested calls degrade to serial
  /// instead of deadlocking). The first exception thrown by `fn` is
  /// rethrown on the calling thread after all chunks have drained.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

 private:
  void WorkerMain();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;

  std::atomic<uint64_t> tasks_run_{0};
  std::atomic<uint64_t> chunks_run_{0};
  std::atomic<uint64_t> parallel_fors_{0};
  std::atomic<uint64_t> idle_ns_{0};
};

/// Process-wide pool used by the nn ops, the trainer, the simulator, and the
/// eval harness. Sized on first use from OVS_NUM_THREADS if set (>= 1), else
/// std::thread::hardware_concurrency().
ThreadPool* GlobalThreadPool();

/// Replaces the global pool with one of the given size (>= 1). Not safe to
/// call while another thread is inside a ParallelFor on the global pool.
void SetGlobalThreads(int num_threads);

/// Parallelism of the global pool (>= 1).
int GlobalThreadCount();

/// ParallelFor on the global pool.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace ovs

#endif  // OVS_UTIL_THREAD_POOL_H_
