#ifndef OVS_UTIL_TABLE_H_
#define OVS_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace ovs {

/// ASCII table builder used by the bench binaries to print paper-style
/// tables. Columns are left-aligned for strings and right-aligned for
/// numbers; widths auto-fit the content.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row. Must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles to `precision` digits, leaving NaN as "-".
  static std::string Cell(double value, int precision = 2);

  /// Renders the table, title, separators and all.
  std::string ToString() const;

  /// Renders to stdout.
  void Print() const;

  /// Renders as CSV (header + rows), for machine consumption.
  std::string ToCsv() const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ovs

#endif  // OVS_UTIL_TABLE_H_
