#ifndef OVS_UTIL_ARENA_H_
#define OVS_UTIL_ARENA_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "util/logging.h"

namespace ovs {

/// Monotonic bump allocator for per-iteration scratch. Allocations are O(1)
/// pointer bumps into coarse blocks; Reset() recycles every block in one call
/// without returning memory to the system. The intended lifecycle is
/// allocate / use / Reset once per hot-loop iteration (the simulator resets
/// it every Engine::Step), so steady-state iterations perform zero heap
/// traffic once the high-water mark has been reached.
///
/// Reset() never runs destructors, so only trivially destructible types may
/// be placed here (NewArray enforces this at compile time).
///
/// Not thread-safe: one Arena belongs to one owning loop. Parallel workers
/// may freely *use* memory handed out by the owner (disjoint slices), they
/// just must not call Allocate/Reset concurrently.
class Arena {
 public:
  /// Blocks are at least `min_block_bytes` large; oversized requests get a
  /// dedicated block.
  explicit Arena(size_t min_block_bytes = 1 << 16);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `alignment` (a power of two no
  /// stricter than alignof(std::max_align_t)). Zero-byte requests return a
  /// valid, unique pointer.
  void* Allocate(size_t bytes, size_t alignment);

  /// Allocates and value-initializes `count` objects of trivially
  /// destructible type T. The objects live until the next Reset(); no
  /// destructor ever runs.
  template <typename T>
  T* NewArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::Reset never runs destructors");
    T* ptr = static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
    for (size_t i = 0; i < count; ++i) {
      // Placement new into arena storage; ownership stays with the arena.
      ::new (static_cast<void*>(ptr + i)) T();  // ovs-lint: allow(naked-new)
    }
    return ptr;
  }

  /// Rewinds to empty, keeping every block for reuse.
  void Reset();

  /// Bytes handed out since the last Reset (excluding alignment padding).
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total block capacity owned by the arena (the reuse pool).
  size_t bytes_reserved() const { return bytes_reserved_; }
  /// Number of blocks owned. Stable across Resets once warmed up.
  size_t num_blocks() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<unsigned char[]> data;
    size_t size = 0;
  };

  size_t min_block_bytes_;
  std::vector<Block> blocks_;
  size_t current_ = 0;  ///< block the next bump lands in
  size_t offset_ = 0;   ///< bump offset within blocks_[current_]
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace ovs

#endif  // OVS_UTIL_ARENA_H_
