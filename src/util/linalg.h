#ifndef OVS_UTIL_LINALG_H_
#define OVS_UTIL_LINALG_H_

#include "util/mat.h"
#include "util/status.h"

namespace ovs {

/// c = a * b for DMat ([n,k] x [k,m]).
DMat MatMulD(const DMat& a, const DMat& b);

/// Transpose.
DMat TransposeD(const DMat& a);

/// Identity matrix of size n.
DMat IdentityD(int n);

/// Solves A X = B with Gaussian elimination and partial pivoting.
/// A: [n,n], B: [n,m]. Fails with FailedPrecondition on (near-)singular A.
StatusOr<DMat> SolveLinearD(const DMat& a, const DMat& b);

/// Ridge-regularized least squares for X in  X * G ≈ Q  (the GLS assignment
/// fit): X = (Q Gᵀ)(G Gᵀ + lambda I)⁻¹.  G: [k,n], Q: [m,n], X: [m,k].
StatusOr<DMat> RidgeFitLeft(const DMat& q, const DMat& g, double lambda);

}  // namespace ovs

#endif  // OVS_UTIL_LINALG_H_
