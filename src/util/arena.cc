#include "util/arena.h"

#include <algorithm>

namespace ovs {

Arena::Arena(size_t min_block_bytes)
    : min_block_bytes_(std::max<size_t>(min_block_bytes, 64)) {}

void* Arena::Allocate(size_t bytes, size_t alignment) {
  CHECK_GT(alignment, 0u);
  CHECK_EQ(alignment & (alignment - 1), 0u) << "alignment must be a power of 2";
  CHECK_LE(alignment, alignof(std::max_align_t))
      << "over-aligned types are not supported";
  // Zero-byte arrays still need a unique address.
  if (bytes == 0) bytes = 1;

  for (;;) {
    if (current_ < blocks_.size()) {
      Block& block = blocks_[current_];
      const size_t aligned = (offset_ + alignment - 1) & ~(alignment - 1);
      if (aligned + bytes <= block.size) {
        offset_ = aligned + bytes;
        bytes_allocated_ += bytes;
        return block.data.get() + aligned;
      }
      // Block exhausted (or too small for this request): move on. The
      // leftover tail is wasted until the next Reset, which is fine for
      // scratch whose total size is stable step over step.
      ++current_;
      offset_ = 0;
      continue;
    }
    // No existing block fits: grow the pool. `new unsigned char[n]` is
    // aligned for std::max_align_t, so block bases satisfy every alignment
    // accepted above.
    const size_t size = std::max(min_block_bytes_, bytes + alignment);
    blocks_.push_back({std::make_unique<unsigned char[]>(size), size});
    bytes_reserved_ += size;
  }
}

void Arena::Reset() {
  current_ = 0;
  offset_ = 0;
  bytes_allocated_ = 0;
}

}  // namespace ovs
