#ifndef OVS_UTIL_PARSE_H_
#define OVS_UTIL_PARSE_H_

#include <string_view>

#include "util/status.h"

namespace ovs {

/// Locale-free, non-throwing numeric field parsers (std::from_chars based)
/// for the CSV/roadnet loaders. Unlike std::stoi/std::stod they never throw:
/// malformed, empty, trailing-garbage, or out-of-range fields come back as
/// Status::DataLoss carrying `context` (typically "file: row N"), honouring
/// the StatusOr contract of every loader above them.
///
/// Leading/trailing ASCII whitespace is tolerated; the numeric core must
/// consume the rest of the field exactly.
[[nodiscard]] StatusOr<int> ParseInt(std::string_view field,
                                     std::string_view context);
[[nodiscard]] StatusOr<double> ParseDouble(std::string_view field,
                                           std::string_view context);

}  // namespace ovs

#endif  // OVS_UTIL_PARSE_H_
