#include "util/linalg.h"

#include <cmath>

namespace ovs {

DMat MatMulD(const DMat& a, const DMat& b) {
  CHECK_EQ(a.cols(), b.rows());
  DMat c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < a.cols(); ++k) {
      const double av = a.at(i, k);
      if (av == 0.0) continue;
      for (int j = 0; j < b.cols(); ++j) {
        c.at(i, j) += av * b.at(k, j);
      }
    }
  }
  return c;
}

DMat TransposeD(const DMat& a) {
  DMat t(a.cols(), a.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) t.at(j, i) = a.at(i, j);
  }
  return t;
}

DMat IdentityD(int n) {
  DMat eye(n, n);
  for (int i = 0; i < n; ++i) eye.at(i, i) = 1.0;
  return eye;
}

StatusOr<DMat> SolveLinearD(const DMat& a, const DMat& b) {
  CHECK_EQ(a.rows(), a.cols());
  CHECK_EQ(a.rows(), b.rows());
  const int n = a.rows();
  const int m = b.cols();
  DMat lu = a;
  DMat x = b;

  for (int col = 0; col < n; ++col) {
    // Partial pivoting.
    int pivot = col;
    double best = std::fabs(lu.at(col, col));
    for (int r = col + 1; r < n; ++r) {
      if (std::fabs(lu.at(r, col)) > best) {
        best = std::fabs(lu.at(r, col));
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return Status::FailedPrecondition("singular matrix in SolveLinearD");
    }
    if (pivot != col) {
      for (int j = 0; j < n; ++j) std::swap(lu.at(col, j), lu.at(pivot, j));
      for (int j = 0; j < m; ++j) std::swap(x.at(col, j), x.at(pivot, j));
    }
    const double diag = lu.at(col, col);
    for (int r = col + 1; r < n; ++r) {
      const double factor = lu.at(r, col) / diag;
      if (factor == 0.0) continue;
      for (int j = col; j < n; ++j) lu.at(r, j) -= factor * lu.at(col, j);
      for (int j = 0; j < m; ++j) x.at(r, j) -= factor * x.at(col, j);
    }
  }
  // Back substitution.
  for (int col = n - 1; col >= 0; --col) {
    const double diag = lu.at(col, col);
    for (int j = 0; j < m; ++j) x.at(col, j) /= diag;
    for (int r = 0; r < col; ++r) {
      const double factor = lu.at(r, col);
      if (factor == 0.0) continue;
      for (int j = 0; j < m; ++j) x.at(r, j) -= factor * x.at(col, j);
    }
  }
  return x;
}

StatusOr<DMat> RidgeFitLeft(const DMat& q, const DMat& g, double lambda) {
  CHECK_EQ(q.cols(), g.cols());
  CHECK_GE(lambda, 0.0);
  const DMat gt = TransposeD(g);
  DMat ggt = MatMulD(g, gt);  // [k,k]
  for (int i = 0; i < ggt.rows(); ++i) ggt.at(i, i) += lambda;
  const DMat qgt = MatMulD(q, gt);  // [m,k]
  // X ggt = qgt  =>  ggtᵀ Xᵀ = qgtᵀ (ggt symmetric).
  StatusOr<DMat> xt = SolveLinearD(ggt, TransposeD(qgt));
  if (!xt.ok()) return xt.status();
  return TransposeD(xt.value());
}

}  // namespace ovs
