#ifndef OVS_UTIL_MAT_H_
#define OVS_UTIL_MAT_H_

#include <cmath>
#include <string>
#include <vector>

#include "util/logging.h"

namespace ovs {

/// Dense row-major matrix of doubles used by the domain layers (simulator
/// sensors, TOD tensors, metrics). Deliberately separate from nn::Tensor
/// (float, autodiff) — this type carries *measurements*, not activations.
class DMat {
 public:
  DMat() : rows_(0), cols_(0) {}
  DMat(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, fill) {
    CHECK_GE(rows, 0);
    CHECK_GE(cols, 0);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int numel() const { return rows_ * cols_; }
  bool empty() const { return data_.empty(); }

  double& at(int r, int c) {
    CHECK_GE(r, 0);
    CHECK_LT(r, rows_);
    CHECK_GE(c, 0);
    CHECK_LT(c, cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  double at(int r, int c) const { return const_cast<DMat*>(this)->at(r, c); }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  bool SameShape(const DMat& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  void Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  double Sum() const {
    double s = 0.0;
    for (double v : data_) s += v;
    return s;
  }
  double Mean() const {
    CHECK_GT(numel(), 0);
    return Sum() / numel();
  }
  double Max() const {
    CHECK_GT(numel(), 0);
    double m = data_[0];
    for (double v : data_) m = std::max(m, v);
    return m;
  }
  double Min() const {
    CHECK_GT(numel(), 0);
    double m = data_[0];
    for (double v : data_) m = std::min(m, v);
    return m;
  }

  /// Sum of row r.
  double RowSum(int r) const {
    double s = 0.0;
    for (int c = 0; c < cols_; ++c) s += at(r, c);
    return s;
  }

  DMat& operator+=(const DMat& other) {
    CHECK(SameShape(other));
    for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
    return *this;
  }
  DMat& operator*=(double alpha) {
    for (double& v : data_) v *= alpha;
    return *this;
  }

  std::string DebugString() const {
    return "DMat[" + std::to_string(rows_) + " x " + std::to_string(cols_) + "]";
  }

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
};

/// Root mean squared error between two same-shape matrices.
inline double Rmse(const DMat& a, const DMat& b) {
  CHECK(a.SameShape(b));
  CHECK_GT(a.numel(), 0);
  double acc = 0.0;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      const double d = a.at(r, c) - b.at(r, c);
      acc += d * d;
    }
  }
  return std::sqrt(acc / a.numel());
}

}  // namespace ovs

#endif  // OVS_UTIL_MAT_H_
