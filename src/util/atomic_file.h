#ifndef OVS_UTIL_ATOMIC_FILE_H_
#define OVS_UTIL_ATOMIC_FILE_H_

#include <cstdint>
#include <ostream>
#include <streambuf>
#include <string>
#include <string_view>

#include "util/status.h"

namespace ovs {

/// Fault injection for crash-safety tests: makes the next atomic writes
/// misbehave after a byte budget, so "disk full" and "killed mid-write"
/// are unit-testable without an actual crash.
enum class WriteFaultMode {
  kNone = 0,
  /// Writes past the budget fail (EIO analogue): the writer's status turns
  /// DataLoss and Commit refuses, removing the temp file.
  kFailAfter,
  /// Writes past the budget vanish silently and Commit aborts *before* the
  /// rename, leaving the truncated temp file on disk — the observable state
  /// after SIGKILL between write() and rename().
  kTruncateAfter,
};

/// Arms the fault for all AtomicFileWriter byte streams process-wide until
/// cleared. `after_bytes` is a shared budget across writes. Test-only.
void SetWriteFaultForTesting(WriteFaultMode mode, int64_t after_bytes);
void ClearWriteFaultForTesting();

/// Crash-safe file writer: bytes go to `<path>.tmp.<pid>`, and Commit()
/// flushes, fsyncs, closes, and rename()s over the destination, so readers
/// only ever observe the old complete file or the new complete file — never
/// a prefix. If the writer dies before Commit (or any write fails), the
/// destination is untouched; the destructor removes an uncommitted temp.
///
/// This is the single sanctioned way to create files under src/ (the
/// `raw-ofstream` lint rule fences out direct std::ofstream writes).
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// The output stream. Writing after a failure is harmless (bytes are
  /// dropped); the sticky error surfaces in status() and Commit().
  std::ostream& stream() { return stream_; }

  /// True while no open/write error has occurred.
  bool ok() const { return status_.ok(); }
  /// First error observed (open failure, short write, injected fault).
  Status status() const { return status_; }

  /// Flushes, fsyncs, closes, and atomically renames the temp file onto the
  /// destination (then fsyncs the directory). Any prior or closing-time
  /// error is returned and the destination stays untouched. Idempotent:
  /// later calls return the first outcome.
  [[nodiscard]] Status Commit();

  /// Drops the temp file without touching the destination.
  void Abort();

  const std::string& path() const { return path_; }
  const std::string& temp_path() const { return temp_path_; }

 private:
  class FdStreambuf : public std::streambuf {
   public:
    explicit FdStreambuf(AtomicFileWriter* owner) : owner_(owner) {}

   protected:
    int overflow(int ch) override;
    std::streamsize xsputn(const char* s, std::streamsize n) override;
    int sync() override;

   private:
    AtomicFileWriter* owner_;
  };

  /// Writes raw bytes to the temp fd, applying the injected fault. Records
  /// the first failure in status_.
  bool WriteBytes(const char* data, size_t len);

  std::string path_;
  std::string temp_path_;
  int fd_ = -1;
  bool finished_ = false;  ///< Commit or Abort already ran.
  Status status_;
  Status commit_status_;
  bool committed_ = false;
  FdStreambuf buf_;
  std::ostream stream_;
};

/// One-shot convenience: atomically replaces `path` with `content`.
[[nodiscard]] Status WriteFileAtomic(const std::string& path,
                                     std::string_view content);

}  // namespace ovs

#endif  // OVS_UTIL_ATOMIC_FILE_H_
