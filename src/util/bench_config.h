#ifndef OVS_UTIL_BENCH_CONFIG_H_
#define OVS_UTIL_BENCH_CONFIG_H_

#include <string>

namespace ovs {

/// Global scale knob for the experiment benches. The default ("fast") sizes
/// every experiment so the whole suite completes in minutes on one core;
/// setting the environment variable OVS_BENCH_SCALE=full switches to the
/// heavier configuration (more training epochs, larger populations) closer to
/// the paper's settings.
enum class BenchScale { kFast, kFull };

/// Reads OVS_BENCH_SCALE from the environment once and caches the result.
BenchScale GetBenchScale();

/// Scales an iteration count: returns `fast` under kFast, `full` under kFull.
int ScaledIters(int fast, int full);

/// Command-line knobs shared by the bench/eval binaries. Deliberately
/// string-only so ovs_util stays free of any obs dependency; the binaries
/// hand the paths to an ovs::obs::Session.
struct BenchArgs {
  /// Chrome-trace JSON output (--trace_out=PATH); empty = tracing off.
  std::string trace_out;
  /// Metrics export (--metrics_out=PATH, ".csv" selects CSV over JSONL);
  /// empty = no export.
  std::string metrics_out;
  /// Structured run-report JSON (--report_out=PATH); empty = no report.
  /// See obs/report.h for the schema and tools/perfdiff for the consumer.
  std::string report_out;
  /// Print the phase-profile summary at session close (--profile).
  bool profile = false;
  /// Trainer checkpoint directory (--checkpoint_dir=PATH); empty = off.
  std::string checkpoint_dir;
  /// Epochs between stage checkpoints (--checkpoint_every=N).
  int checkpoint_every = 10;
  /// Resume from existing checkpoints (--resume).
  bool resume = false;
  /// Sensor-fault spec (--sensor_fault=dropout:0.3,noise:1.0); empty = no
  /// faults. String-only here (ovs_util cannot depend on ovs_sim); benches
  /// hand it to sim::ParseSensorFaultSpec.
  std::string sensor_fault;
  /// Run the simulator's serial reference sweep (--force_serial_sweep)
  /// instead of the two-phase parallel sweep. Outputs are bitwise-identical
  /// either way; CI's sim-parity job diffs the two to prove it.
  bool force_serial_sweep = false;
};

/// Parses --trace_out= / --metrics_out= / --report_out= / --profile /
/// --checkpoint_dir= / --checkpoint_every= / --resume / --sensor_fault= /
/// --force_serial_sweep from argv. Unrecognized
/// arguments are ignored (benches own any extra flags); a recognized flag
/// missing or with a malformed value keeps the default.
BenchArgs ParseBenchArgs(int argc, char** argv);

/// True when `arg` is one of the flags ParseBenchArgs understands. The
/// google-benchmark mains use this to strip shared flags from argv before
/// handing the remainder to benchmark::Initialize (which rejects unknowns).
bool IsBenchArg(const std::string& arg);

}  // namespace ovs

#endif  // OVS_UTIL_BENCH_CONFIG_H_
