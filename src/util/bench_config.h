#ifndef OVS_UTIL_BENCH_CONFIG_H_
#define OVS_UTIL_BENCH_CONFIG_H_

namespace ovs {

/// Global scale knob for the experiment benches. The default ("fast") sizes
/// every experiment so the whole suite completes in minutes on one core;
/// setting the environment variable OVS_BENCH_SCALE=full switches to the
/// heavier configuration (more training epochs, larger populations) closer to
/// the paper's settings.
enum class BenchScale { kFast, kFull };

/// Reads OVS_BENCH_SCALE from the environment once and caches the result.
BenchScale GetBenchScale();

/// Scales an iteration count: returns `fast` under kFast, `full` under kFull.
int ScaledIters(int fast, int full);

}  // namespace ovs

#endif  // OVS_UTIL_BENCH_CONFIG_H_
