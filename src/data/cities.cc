#include "data/cities.h"

#include <cmath>

namespace ovs::data {

DatasetConfig HangzhouConfig() {
  DatasetConfig c;
  c.name = "Hangzhou";
  c.grid_rows = 7;
  c.grid_cols = 7;
  c.road_keep_fraction = 0.75;  // 84 grid roads -> ~63
  c.region_cells_x = 3;
  c.region_cells_y = 3;
  c.num_od_pairs = 12;
  c.min_od_separation_m = 900.0;
  c.rhythm = RhythmProfile::kWeekdayCommute;
  c.start_hour = 7.0;
  c.mean_trips_per_od_interval = 45.0;
  c.seed = 101;
  return c;
}

DatasetConfig PortoConfig() {
  DatasetConfig c;
  c.name = "Porto";
  c.grid_rows = 7;
  c.grid_cols = 10;
  c.road_keep_fraction = 0.82;  // 123 grid roads -> ~100
  c.region_cells_x = 3;
  c.region_cells_y = 3;
  c.num_od_pairs = 12;
  c.min_od_separation_m = 900.0;
  c.rhythm = RhythmProfile::kWeekdayCommute;
  c.start_hour = 8.0;
  c.mean_trips_per_od_interval = 40.0;
  c.seed = 202;
  return c;
}

DatasetConfig ManhattanConfig() {
  DatasetConfig c;
  c.name = "Manhattan";
  c.grid_rows = 10;
  c.grid_cols = 10;
  c.road_keep_fraction = 1.0;  // full 10x10 grid = 180 roads, as in Table III
  c.region_cells_x = 4;
  c.region_cells_y = 4;
  c.num_od_pairs = 16;
  c.min_od_separation_m = 1200.0;
  c.rhythm = RhythmProfile::kWeekdayCommute;
  c.start_hour = 7.5;
  c.mean_trips_per_od_interval = 22.0;
  c.seed = 303;
  return c;
}

DatasetConfig StateCollegeConfig() {
  DatasetConfig c;
  c.name = "StateCollege";
  c.grid_rows = 2;
  c.grid_cols = 7;
  c.road_keep_fraction = 0.85;  // 19 grid roads -> ~16
  c.region_cells_x = 4;
  c.region_cells_y = 1;
  c.num_od_pairs = 6;
  c.min_od_separation_m = 600.0;
  c.rhythm = RhythmProfile::kWeekdayCommute;
  c.start_hour = 7.0;
  c.mean_trips_per_od_interval = 25.0;
  c.seed = 404;
  return c;
}

DatasetConfig Synthetic3x3Config() {
  DatasetConfig c;
  c.name = "Synthetic3x3";
  c.grid_rows = 3;
  c.grid_cols = 3;
  c.num_lanes = 1;  // single-lane grid congests, making speed informative
  c.road_keep_fraction = 1.0;
  c.region_cells_x = 3;
  c.region_cells_y = 3;  // one region per intersection
  c.num_od_pairs = 8;
  c.min_od_separation_m = 550.0;
  c.rhythm = RhythmProfile::kFlat;
  c.mean_trips_per_od_interval = 60.0;
  c.seed = 505;
  return c;
}

DatasetConfig ScalingConfig(int num_intersections) {
  DatasetConfig c;
  const int side = std::max(2, static_cast<int>(std::lround(
                                   std::sqrt(static_cast<double>(num_intersections)))));
  int rows = side;
  int cols = side;
  // Adjust cols so rows*cols is as close as possible to the request.
  while (rows * cols < num_intersections) ++cols;
  c.name = "Scale" + std::to_string(num_intersections);
  c.grid_rows = rows;
  c.grid_cols = cols;
  c.road_keep_fraction = 1.0;
  c.region_cells_x = std::max(2, side / 3);
  c.region_cells_y = std::max(2, side / 3);
  c.num_od_pairs = std::max(6, num_intersections / 10);
  c.min_od_separation_m = 600.0;
  c.rhythm = RhythmProfile::kFlat;
  // Sparse demand: scaling measures compute cost, not congestion physics.
  c.mean_trips_per_od_interval = 8.0;
  c.seed = 606 + static_cast<uint64_t>(num_intersections);
  return c;
}

}  // namespace ovs::data
