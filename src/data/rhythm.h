#ifndef OVS_DATA_RHYTHM_H_
#define OVS_DATA_RHYTHM_H_

#include <string>

namespace ovs::data {

/// Daily demand rhythms used to synthesize ground-truth TOD tensors in place
/// of the paper's (unavailable) taxi trajectories. Weights are relative trip
/// intensities as a function of hour-of-day in [0, 24).
enum class RhythmProfile {
  kFlat,            ///< constant demand
  kWeekdayCommute,  ///< AM peak ~8h, PM peak ~18h
  kSundayToCommercial,  ///< shopping: peaks ~10h and ~18h (Fig. 12 A->B)
  kSundayToResidential, ///< going home late: peak 20h-1h (Fig. 12 B->A)
  kEventArrival,    ///< football-day arrivals peaking ~9h for a noon game (Fig. 13)
};

/// Relative demand weight at `hour` (0..24, wraps around midnight).
/// Always > 0; profiles are scaled so their daily mean is ~1.
double RhythmWeight(RhythmProfile profile, double hour);

/// Human-readable name for logs and tables.
std::string RhythmProfileName(RhythmProfile profile);

}  // namespace ovs::data

#endif  // OVS_DATA_RHYTHM_H_
