#include "data/rhythm.h"

#include <cmath>

#include "util/logging.h"

namespace ovs::data {

namespace {

/// Gaussian bump centered at `center` hours with width `sigma`, handling the
/// midnight wrap by evaluating the nearest image.
double Bump(double hour, double center, double sigma) {
  double d = std::fabs(hour - center);
  d = std::min(d, 24.0 - d);
  return std::exp(-0.5 * (d / sigma) * (d / sigma));
}

}  // namespace

double RhythmWeight(RhythmProfile profile, double hour) {
  double h = std::fmod(hour, 24.0);
  if (h < 0.0) h += 24.0;
  switch (profile) {
    case RhythmProfile::kFlat:
      return 1.0;
    case RhythmProfile::kWeekdayCommute:
      return 0.25 + 2.2 * Bump(h, 8.0, 1.2) + 1.8 * Bump(h, 18.0, 1.5);
    case RhythmProfile::kSundayToCommercial:
      // Shopping trips: out at ~10am and again ~6pm (paper Fig. 12a).
      return 0.15 + 1.9 * Bump(h, 10.0, 1.3) + 1.6 * Bump(h, 18.0, 1.3);
    case RhythmProfile::kSundayToResidential:
      // Going home late: single broad peak from 8pm into 1am (Fig. 12b).
      return 0.15 + 2.1 * Bump(h, 22.5, 1.8);
    case RhythmProfile::kEventArrival:
      // Arrive ~2h before a noon kickoff (Fig. 13): peak at 9am.
      return 0.1 + 2.5 * Bump(h, 9.0, 1.0);
  }
  LOG(FATAL) << "unknown rhythm profile";
  return 1.0;
}

std::string RhythmProfileName(RhythmProfile profile) {
  switch (profile) {
    case RhythmProfile::kFlat:
      return "flat";
    case RhythmProfile::kWeekdayCommute:
      return "weekday-commute";
    case RhythmProfile::kSundayToCommercial:
      return "sunday-to-commercial";
    case RhythmProfile::kSundayToResidential:
      return "sunday-to-residential";
    case RhythmProfile::kEventArrival:
      return "event-arrival";
  }
  return "unknown";
}

}  // namespace ovs::data
