#include "data/trajectories.h"

#include <algorithm>
#include <cmath>

namespace ovs::data {

namespace {

/// Region id of an intersection, or -1 when unassigned.
int RegionOf(const od::RegionPartition& regions, sim::IntersectionId node) {
  for (const od::Region& r : regions.regions()) {
    for (sim::IntersectionId m : r.members) {
      if (m == node) return r.id;
    }
  }
  return -1;
}

}  // namespace

std::vector<sim::VehicleTrace> SampleTaxiFleet(
    const std::vector<sim::VehicleTrace>& all_vehicles, double taxi_fraction,
    Rng* rng) {
  CHECK_GT(taxi_fraction, 0.0);
  CHECK_LE(taxi_fraction, 1.0);
  CHECK(rng != nullptr);
  std::vector<sim::VehicleTrace> taxis;
  for (const sim::VehicleTrace& trace : all_vehicles) {
    if (trace.route.empty()) continue;  // never spawned: no GPS log
    if (rng->Bernoulli(taxi_fraction)) taxis.push_back(trace);
  }
  return taxis;
}

int MatchTraceToOd(const sim::VehicleTrace& trace, const sim::RoadNet& net,
                   const od::RegionPartition& regions, const od::OdSet& od_set) {
  if (trace.route.empty()) return -1;
  const int origin = RegionOf(regions, net.link(trace.route.front()).from);
  const int dest = RegionOf(regions, net.link(trace.route.back()).to);
  if (origin < 0 || dest < 0) return -1;
  return od_set.Find(origin, dest);
}

od::TodTensor ExtractTodFromTrajectories(
    const std::vector<sim::VehicleTrace>& traces, const sim::RoadNet& net,
    const od::RegionPartition& regions, const od::OdSet& od_set,
    double interval_s, int num_intervals) {
  CHECK_GT(interval_s, 0.0);
  CHECK_GT(num_intervals, 0);
  od::TodTensor tod(od_set.size(), num_intervals);
  for (const sim::VehicleTrace& trace : traces) {
    const int od = MatchTraceToOd(trace, net, regions, od_set);
    if (od < 0) continue;
    const int interval = std::clamp(
        static_cast<int>(trace.depart_time_s / interval_s), 0, num_intervals - 1);
    tod.at(od, interval) += 1.0;
  }
  return tod;
}

od::TodTensor ScaleTaxiTod(const od::TodTensor& taxi_tod, double taxi_fraction) {
  CHECK_GT(taxi_fraction, 0.0);
  CHECK_LE(taxi_fraction, 1.0);
  od::TodTensor scaled = taxi_tod;
  scaled.Scale(1.0 / taxi_fraction);
  return scaled;
}

DMat ProbeSpeedTensor(const std::vector<sim::VehicleTrace>& traces,
                      const sim::RoadNet& net, double interval_s,
                      int num_intervals, const ProbeSpeedOptions& options,
                      Rng* rng) {
  CHECK(rng != nullptr);
  CHECK_GT(options.probe_fraction, 0.0);
  CHECK_LE(options.probe_fraction, 1.0);

  DMat sum(net.num_links(), num_intervals);
  DMat count(net.num_links(), num_intervals);
  for (const sim::VehicleTrace& trace : traces) {
    if (trace.route.empty()) continue;
    if (!rng->Bernoulli(options.probe_fraction)) continue;
    for (size_t i = 0; i < trace.route.size(); ++i) {
      // Traversal time = next link's entry (or finish time) minus this entry.
      double exit_time = -1.0;
      if (i + 1 < trace.entry_times.size()) {
        exit_time = trace.entry_times[i + 1];
      } else if (trace.finish_time_s >= 0.0) {
        exit_time = trace.finish_time_s;
      }
      if (exit_time < 0.0) continue;  // still on this link at horizon end
      const double dwell = exit_time - trace.entry_times[i];
      if (dwell <= 0.0) continue;
      const sim::LinkId link = trace.route[i];
      double speed = net.link(link).length_m / dwell;
      speed += rng->Gaussian(0.0, options.probe_noise_mps);
      speed = std::clamp(speed, 0.1, net.link(link).speed_limit_mps * 1.2);
      const int interval = std::clamp(
          static_cast<int>(trace.entry_times[i] / interval_s), 0,
          num_intervals - 1);
      sum.at(link, interval) += speed;
      count.at(link, interval) += 1.0;
    }
  }

  DMat out(net.num_links(), num_intervals);
  for (int l = 0; l < net.num_links(); ++l) {
    for (int t = 0; t < num_intervals; ++t) {
      out.at(l, t) = count.at(l, t) > 0.0
                         ? sum.at(l, t) / count.at(l, t)
                         : net.link(l).speed_limit_mps;
    }
  }
  return out;
}

}  // namespace ovs::data
