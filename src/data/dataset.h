#ifndef OVS_DATA_DATASET_H_
#define OVS_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/rhythm.h"
#include "od/incidence.h"
#include "od/region.h"
#include "od/tod_tensor.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace ovs::data {

/// Recipe for synthesizing a city-scale dataset. Standing in for the paper's
/// taxi-derived datasets (Table III): the road network is an irregularized
/// grid at the same intersection/road scale; the ground-truth TOD follows a
/// population-weighted gravity base modulated by a daily rhythm, mimicking
/// the "scaled taxi trajectory" tensors the paper feeds to its simulator.
struct DatasetConfig {
  std::string name = "synthetic";
  int grid_rows = 3;
  int grid_cols = 3;
  double spacing_m = 300.0;
  int num_lanes = 2;
  double speed_limit_mps = 13.89;
  /// Fraction of grid roads kept when irregularizing (1.0 = full grid).
  double road_keep_fraction = 1.0;

  int region_cells_x = 3;
  int region_cells_y = 3;
  int num_od_pairs = 8;
  /// Minimum centroid separation of selected OD pairs. Without it the
  /// gravity weighting (1/d^2) picks adjacent regions whose one-link routes
  /// never interact with signals or each other — leaving the speed
  /// observation uninformative about demand.
  double min_od_separation_m = 0.0;

  int num_intervals = 12;
  double interval_s = 600.0;
  double start_hour = 7.0;  ///< wall-clock hour at t = 0 (for rhythms)

  RhythmProfile rhythm = RhythmProfile::kWeekdayCommute;
  /// Mean trips per OD per interval before rhythm/noise modulation.
  double mean_trips_per_od_interval = 30.0;
  /// Multiplies the *training-pattern* demand scale only (not the ground
  /// truth). Raises the generated-data coverage — and hence the TOD
  /// decoder's representable range — above the background level, e.g. for
  /// event-day scenarios whose peaks dwarf the daily baseline.
  double training_demand_multiplier = 1.0;
  /// Log-normal noise sigma on TOD cells.
  double tod_noise_sigma = 0.2;

  uint64_t seed = 7;
};

/// A fully materialized dataset: network, regions, OD pairs, representative
/// routes and incidence, ground-truth TOD, and auxiliary feeds.
struct Dataset {
  std::string name;
  DatasetConfig config;

  sim::RoadNet net;
  od::RegionPartition regions;
  od::OdSet od_set;
  std::vector<sim::Route> od_routes;  ///< representative route per OD
  DMat incidence;                     ///< [num_links x num_od]

  od::TodTensor ground_truth_tod;

  /// Synthetic LEHD: per-OD horizon totals with mild observation noise.
  std::vector<double> lehd_od_totals;
  /// Links carrying surveillance cameras (sparse volume observations).
  std::vector<sim::LinkId> camera_links;

  sim::EngineConfig engine_config;

  [[nodiscard]] int num_links() const { return net.num_links(); }
  [[nodiscard]] int num_od() const { return od_set.size(); }
  [[nodiscard]] int num_intervals() const { return config.num_intervals; }

  /// Wall-clock hour at the midpoint of interval t.
  [[nodiscard]] double HourOfInterval(int t) const {
    return config.start_hour + (t + 0.5) * config.interval_s / 3600.0;
  }
};

/// Builds a dataset from a config. Deterministic given config.seed.
[[nodiscard]] Dataset BuildDataset(const DatasetConfig& config);

/// Lower-level pieces, exposed for tests and custom datasets ------------

/// Removes roads from a grid network until only ~keep_fraction remain, never
/// disconnecting the network. Returns the irregularized copy.
[[nodiscard]] sim::RoadNet IrregularizeGrid(const sim::RoadNet& grid,
                                            double keep_fraction, Rng* rng);

/// Assigns region populations: ~120 inhabitants per member intersection with
/// +-40% spread.
void AssignPopulations(od::RegionPartition* regions, Rng* rng);

/// Picks the `count` highest-gravity (pop*pop/d^2) routable region pairs at
/// least `min_separation_m` apart (centroid distance).
[[nodiscard]] od::OdSet SelectOdPairs(const sim::RoadNet& net,
                                      const od::RegionPartition& regions,
                                      int count,
                                      double min_separation_m = 0.0);

/// Gravity x rhythm x log-normal-noise ground-truth TOD.
[[nodiscard]] od::TodTensor SynthesizeGroundTruthTod(
    const Dataset& partial, const DatasetConfig& config, Rng* rng);

}  // namespace ovs::data

#endif  // OVS_DATA_DATASET_H_
