#ifndef OVS_DATA_CASE_STUDIES_H_
#define OVS_DATA_CASE_STUDIES_H_

#include "data/dataset.h"

namespace ovs::data {

/// Case study 1 (paper §V-K1, Fig. 12): a Sunday in Hangzhou with a
/// residential region A and a commercial region B. Ground-truth TOD gives
/// A->B a 10am and a 6pm shopping peak and B->A a late 8pm-1am homeward
/// peak. Horizon: 24 one-hour intervals.
struct Case1Dataset {
  Dataset dataset;
  int region_a = -1;  ///< residential
  int region_b = -1;  ///< commercial
  int od_ab = -1;     ///< index of (A -> B) in the OD set
  int od_ba = -1;     ///< index of (B -> A)
};

Case1Dataset BuildCase1Hangzhou();

/// Case study 2 (paper §V-K2, Fig. 13): football Saturday in a college town.
/// Three ODs feed the stadium: O1/O3 sit at highway exits (large counts),
/// O2 is a local residential area (small count). Arrivals peak ~9am for a
/// noon kickoff. Horizon: 24 one-hour intervals.
struct Case2Dataset {
  Dataset dataset;
  int stadium_region = -1;
  int od_o1 = -1;  ///< highway #99 gate -> stadium
  int od_o2 = -1;  ///< local residential -> stadium
  int od_o3 = -1;  ///< highway #322 gate -> stadium
};

Case2Dataset BuildCase2StateCollege();

}  // namespace ovs::data

#endif  // OVS_DATA_CASE_STUDIES_H_
