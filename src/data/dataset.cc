#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "sim/router.h"

namespace ovs::data {

namespace {

/// Undirected connectivity check treating each bidirectional road as one
/// edge; `skip_a`/`skip_b` simulate removing the road between them.
bool StaysConnected(const sim::RoadNet& net,
                    const std::vector<std::pair<int, int>>& roads,
                    const std::vector<bool>& kept, int candidate) {
  const int n = net.num_intersections();
  std::vector<std::vector<int>> adj(n);
  for (size_t i = 0; i < roads.size(); ++i) {
    if (!kept[i] || static_cast<int>(i) == candidate) continue;
    adj[roads[i].first].push_back(roads[i].second);
    adj[roads[i].second].push_back(roads[i].first);
  }
  std::vector<bool> visited(n, false);
  std::queue<int> bfs;
  bfs.push(0);
  visited[0] = true;
  int seen = 1;
  while (!bfs.empty()) {
    const int u = bfs.front();
    bfs.pop();
    for (int v : adj[u]) {
      if (!visited[v]) {
        visited[v] = true;
        ++seen;
        bfs.push(v);
      }
    }
  }
  return seen == n;
}

}  // namespace

sim::RoadNet IrregularizeGrid(const sim::RoadNet& grid, double keep_fraction,
                              Rng* rng) {
  CHECK_GT(keep_fraction, 0.0);
  CHECK_LE(keep_fraction, 1.0);

  // Collect undirected roads (pairs of opposite links share endpoints).
  std::vector<std::pair<int, int>> roads;
  for (const sim::Link& l : grid.links()) {
    if (l.from < l.to) roads.emplace_back(l.from, l.to);
  }
  std::vector<bool> kept(roads.size(), true);
  const int target_removals = static_cast<int>(
      std::floor(roads.size() * (1.0 - keep_fraction) + 0.5));

  std::vector<int> order(roads.size());
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);

  int removed = 0;
  for (int candidate : order) {
    if (removed >= target_removals) break;
    if (StaysConnected(grid, roads, kept, candidate)) {
      kept[candidate] = false;
      ++removed;
    }
  }

  // Rebuild the network with only the kept roads, preserving geometry and
  // jittering lengths slightly (+-10%) so links are not perfectly uniform.
  sim::RoadNet out;
  for (const sim::Intersection& node : grid.intersections()) {
    out.AddIntersection(node.x, node.y, node.signalized);
  }
  // Look up an original link for road attributes.
  for (size_t i = 0; i < roads.size(); ++i) {
    if (!kept[i]) continue;
    const auto [a, b] = roads[i];
    double length = 0.0;
    int lanes = 1;
    double limit = 13.89;
    for (const sim::Link& l : grid.links()) {
      if (l.from == a && l.to == b) {
        length = l.length_m;
        lanes = l.num_lanes;
        limit = l.speed_limit_mps;
        break;
      }
    }
    CHECK_GT(length, 0.0);
    const double jitter = rng->Uniform(0.9, 1.1);
    out.AddRoad(a, b, length * jitter, lanes, limit);
  }
  return out;
}

void AssignPopulations(od::RegionPartition* regions, Rng* rng) {
  CHECK(regions != nullptr);
  for (int i = 0; i < regions->num_regions(); ++i) {
    od::Region& r = regions->mutable_region(i);
    double pop = 0.0;
    for (size_t m = 0; m < r.members.size(); ++m) {
      pop += 120.0 * rng->Uniform(0.6, 1.4);
    }
    r.population = pop;
  }
}

od::OdSet SelectOdPairs(const sim::RoadNet& net,
                        const od::RegionPartition& regions, int count,
                        double min_separation_m) {
  CHECK_GT(count, 0);
  sim::Router router(&net);
  struct Candidate {
    double weight;
    od::OdPair pair;
  };
  std::vector<Candidate> candidates;
  for (int o = 0; o < regions.num_regions(); ++o) {
    for (int d = 0; d < regions.num_regions(); ++d) {
      if (o == d) continue;
      if (regions.Distance(o, d) < min_separation_m) continue;
      const double dist = std::max(1.0, regions.Distance(o, d));
      const double w = regions.region(o).population *
                       regions.region(d).population / (dist * dist);
      candidates.push_back({w, {o, d}});
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.weight > b.weight;
                   });

  od::OdSet od_set;
  for (const Candidate& c : candidates) {
    if (od_set.size() >= count) break;
    const sim::IntersectionId o =
        od::RepresentativeIntersection(net, regions.region(c.pair.origin));
    const sim::IntersectionId d =
        od::RepresentativeIntersection(net, regions.region(c.pair.dest));
    if (o == d) continue;
    if (!router.CachedRoute(o, d).ok()) continue;
    od_set.Add(c.pair);
  }
  CHECK_GT(od_set.size(), 0) << "no routable OD pairs";
  return od_set;
}

od::TodTensor SynthesizeGroundTruthTod(const Dataset& partial,
                                       const DatasetConfig& config, Rng* rng) {
  const int n_od = partial.od_set.size();
  const int t_count = config.num_intervals;
  od::TodTensor tod(n_od, t_count);

  // Gravity base per OD, normalized to mean 1.
  std::vector<double> base(n_od);
  double base_sum = 0.0;
  for (int i = 0; i < n_od; ++i) {
    const od::OdPair& pair = partial.od_set.pair(i);
    const double dist =
        std::max(1.0, partial.regions.Distance(pair.origin, pair.dest));
    base[i] = partial.regions.region(pair.origin).population *
              partial.regions.region(pair.dest).population / (dist * dist);
    base_sum += base[i];
  }
  CHECK_GT(base_sum, 0.0);
  for (double& b : base) b *= n_od / base_sum;

  // Rhythm weights, normalized over the observed window to mean 1.
  std::vector<double> rhythm(t_count);
  double rhythm_sum = 0.0;
  for (int t = 0; t < t_count; ++t) {
    rhythm[t] = RhythmWeight(config.rhythm, partial.HourOfInterval(t));
    rhythm_sum += rhythm[t];
  }
  for (double& w : rhythm) w *= t_count / rhythm_sum;

  for (int i = 0; i < n_od; ++i) {
    // Per-OD idiosyncrasy so ODs are not scaled copies of each other.
    const double od_factor = rng->Uniform(0.6, 1.4);
    for (int t = 0; t < t_count; ++t) {
      const double noise = std::exp(rng->Gaussian(0.0, config.tod_noise_sigma));
      tod.at(i, t) = config.mean_trips_per_od_interval * base[i] * od_factor *
                     rhythm[t] * noise;
    }
  }
  return tod;
}

Dataset BuildDataset(const DatasetConfig& config) {
  Rng rng(config.seed);
  Dataset out;
  out.name = config.name;
  out.config = config;

  sim::RoadNet grid =
      sim::MakeGridNetwork(config.grid_rows, config.grid_cols, config.spacing_m,
                           config.num_lanes, config.speed_limit_mps);
  out.net = config.road_keep_fraction < 1.0
                ? IrregularizeGrid(grid, config.road_keep_fraction, &rng)
                : grid;
  CHECK_OK(out.net.Validate());

  out.regions =
      od::PartitionByGrid(out.net, config.region_cells_x, config.region_cells_y);
  AssignPopulations(&out.regions, &rng);
  CHECK_OK(out.regions.Validate(out.net));

  out.od_set = SelectOdPairs(out.net, out.regions, config.num_od_pairs,
                             config.min_od_separation_m);
  out.od_routes = od::ComputeOdRoutes(out.net, out.regions, out.od_set);
  out.incidence = od::RouteLinkIncidence(out.od_routes, out.net.num_links());

  out.ground_truth_tod = SynthesizeGroundTruthTod(out, config, &rng);

  // LEHD-style horizon totals with +-5% observation noise.
  out.lehd_od_totals.resize(out.od_set.size());
  for (int i = 0; i < out.od_set.size(); ++i) {
    out.lehd_od_totals[i] =
        out.ground_truth_tod.OdTotal(i) * rng.Uniform(0.95, 1.05);
  }

  // Cameras at the links crossed by the most OD routes.
  std::vector<std::pair<double, sim::LinkId>> busy;
  for (int l = 0; l < out.net.num_links(); ++l) {
    double crossings = 0.0;
    for (int i = 0; i < out.od_set.size(); ++i) {
      crossings += out.incidence.at(l, i);
    }
    busy.emplace_back(crossings, l);
  }
  std::stable_sort(busy.begin(), busy.end(), [](const auto& a, const auto& b) {
    return a.first > b.first;
  });
  const int num_cameras =
      std::max(1, std::min(out.net.num_links() / 10, 10));
  for (int i = 0; i < num_cameras && busy[i].first > 0.0; ++i) {
    out.camera_links.push_back(busy[i].second);
  }

  out.engine_config.interval_s = config.interval_s;
  out.engine_config.duration_s = config.interval_s * config.num_intervals;
  return out;
}

}  // namespace ovs::data
