#ifndef OVS_DATA_CITIES_H_
#define OVS_DATA_CITIES_H_

#include "data/dataset.h"

namespace ovs::data {

/// Preset dataset configs mirroring the scale of the paper's Table III.
/// The road networks are irregularized grids with matching intersection and
/// road counts; the ground-truth TOD stands in for the scaled taxi tensors
/// (see DESIGN.md, substitution table).

/// Hangzhou: 46 intersections / 63 roads in the paper; here a 7x7 grid
/// irregularized to ~63 roads. Big-commercial-city demand.
DatasetConfig HangzhouConfig();

/// Porto: 70 intersections / 100 roads; 7x10 grid at ~100 roads.
DatasetConfig PortoConfig();

/// Manhattan: 100 intersections / 180 roads; the full 10x10 grid has exactly
/// 180 roads. Heaviest demand of the three.
DatasetConfig ManhattanConfig();

/// State College: 14 intersections / 16 roads; 2x7 grid at ~16 roads.
/// College-town scale, used by the case-2 experiment.
DatasetConfig StateCollegeConfig();

/// The synthetic 3x3 network of the paper's Table VIII experiments
/// (2-hour horizon, 10-minute intervals).
DatasetConfig Synthetic3x3Config();

/// Scaling-study config (Fig. 9): a near-square grid with approximately
/// `num_intersections` intersections and sparse demand.
DatasetConfig ScalingConfig(int num_intersections);

}  // namespace ovs::data

#endif  // OVS_DATA_CITIES_H_
