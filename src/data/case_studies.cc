#include "data/case_studies.h"

#include <algorithm>
#include <cmath>

#include "data/cities.h"

namespace ovs::data {

namespace {

/// Rewrites one OD row of the ground-truth TOD to follow `profile` with the
/// given mean trips per interval (before rhythm modulation).
void SetOdRhythm(Dataset* ds, int od_idx, RhythmProfile profile,
                 double mean_per_interval, Rng* rng) {
  const int t_count = ds->config.num_intervals;
  std::vector<double> rhythm(t_count);
  double sum = 0.0;
  for (int t = 0; t < t_count; ++t) {
    rhythm[t] = RhythmWeight(profile, ds->HourOfInterval(t));
    sum += rhythm[t];
  }
  for (int t = 0; t < t_count; ++t) {
    const double noise = std::exp(rng->Gaussian(0.0, 0.1));
    ds->ground_truth_tod.at(od_idx, t) =
        mean_per_interval * rhythm[t] * t_count / sum * noise;
  }
}

/// Rebuilds OD-derived artifacts after editing the OD set.
void RefreshOdArtifacts(Dataset* ds, Rng* rng) {
  ds->od_routes = od::ComputeOdRoutes(ds->net, ds->regions, ds->od_set);
  ds->incidence = od::RouteLinkIncidence(ds->od_routes, ds->net.num_links());
  ds->ground_truth_tod = SynthesizeGroundTruthTod(*ds, ds->config, rng);
}

void RefreshLehd(Dataset* ds, Rng* rng) {
  ds->lehd_od_totals.resize(ds->od_set.size());
  for (int i = 0; i < ds->od_set.size(); ++i) {
    ds->lehd_od_totals[i] =
        ds->ground_truth_tod.OdTotal(i) * rng->Uniform(0.95, 1.05);
  }
}

/// Ensures the OD set contains (origin, dest); replaces the last pair if the
/// set is full. Returns the index of the pair.
int EnsureOdPair(Dataset* ds, int origin, int dest) {
  int idx = ds->od_set.Find(origin, dest);
  if (idx >= 0) return idx;
  ds->od_set.Add({origin, dest});
  return ds->od_set.size() - 1;
}

}  // namespace

Case1Dataset BuildCase1Hangzhou() {
  DatasetConfig config = HangzhouConfig();
  config.name = "Hangzhou-Sunday";
  config.num_intervals = 24;
  config.interval_s = 3600.0;
  config.start_hour = 0.0;
  config.rhythm = RhythmProfile::kFlat;
  config.mean_trips_per_od_interval = 60.0;   // light Sunday background (veh/h)
  config.training_demand_multiplier = 5.0;    // training covers the A-B peaks
  config.num_lanes = 1;  // Sunday-scale demand only congests single-lane streets
  config.seed = 1101;

  Case1Dataset out;
  out.dataset = BuildDataset(config);
  Dataset& ds = out.dataset;
  Rng rng(config.seed + 1);

  // Residential region A: the most populous region. Commercial region B:
  // the region closest to the network centroid (downtown).
  double cx = 0.0, cy = 0.0;
  for (const sim::Intersection& node : ds.net.intersections()) {
    cx += node.x;
    cy += node.y;
  }
  cx /= ds.net.num_intersections();
  cy /= ds.net.num_intersections();

  int region_b = 0;
  double best = 1e30;
  for (int r = 0; r < ds.regions.num_regions(); ++r) {
    const od::Region& reg = ds.regions.region(r);
    const double d = std::hypot(reg.centroid_x - cx, reg.centroid_y - cy);
    if (d < best) {
      best = d;
      region_b = r;
    }
  }
  int region_a = -1;
  double best_pop = -1.0;
  for (int r = 0; r < ds.regions.num_regions(); ++r) {
    if (r == region_b) continue;
    if (ds.regions.region(r).population > best_pop) {
      best_pop = ds.regions.region(r).population;
      region_a = r;
    }
  }
  CHECK_GE(region_a, 0);
  out.region_a = region_a;
  out.region_b = region_b;

  out.od_ab = EnsureOdPair(&ds, region_a, region_b);
  out.od_ba = EnsureOdPair(&ds, region_b, region_a);
  RefreshOdArtifacts(&ds, &rng);

  // Sunday behaviour: out to shop late morning and early evening; home late.
  SetOdRhythm(&ds, out.od_ab, RhythmProfile::kSundayToCommercial, 300.0, &rng);
  SetOdRhythm(&ds, out.od_ba, RhythmProfile::kSundayToResidential, 300.0, &rng);
  RefreshLehd(&ds, &rng);
  return out;
}

Case2Dataset BuildCase2StateCollege() {
  DatasetConfig config = StateCollegeConfig();
  config.name = "StateCollege-Gameday";
  config.num_intervals = 24;
  config.interval_s = 3600.0;
  config.start_hour = 0.0;
  config.rhythm = RhythmProfile::kFlat;
  config.mean_trips_per_od_interval = 60.0;   // quiet-town baseline (veh/h)
  config.training_demand_multiplier = 5.0;    // training covers game-day peaks
  config.region_cells_x = 4;
  config.region_cells_y = 1;
  config.num_od_pairs = 4;
  config.seed = 2202;

  Case2Dataset out;
  out.dataset = BuildDataset(config);
  Dataset& ds = out.dataset;
  Rng rng(config.seed + 1);

  CHECK_GE(ds.regions.num_regions(), 4)
      << "case 2 needs at least 4 regions (O1, O2, stadium, O3)";
  // Geography: leftmost region = highway #99 gate (O1), rightmost = highway
  // #322 gate (O3); the stadium sits mid-town, O2 is the other local region.
  std::vector<int> by_x(ds.regions.num_regions());
  for (int r = 0; r < ds.regions.num_regions(); ++r) by_x[r] = r;
  std::stable_sort(by_x.begin(), by_x.end(), [&ds](int a, int b) {
    return ds.regions.region(a).centroid_x < ds.regions.region(b).centroid_x;
  });
  const int o1 = by_x.front();
  const int o3 = by_x.back();
  const int stadium = by_x[by_x.size() / 2];
  int o2 = -1;
  for (int r : by_x) {
    if (r != o1 && r != o3 && r != stadium) {
      o2 = r;
      break;
    }
  }
  CHECK_GE(o2, 0);
  out.stadium_region = stadium;

  out.od_o1 = EnsureOdPair(&ds, o1, stadium);
  out.od_o2 = EnsureOdPair(&ds, o2, stadium);
  out.od_o3 = EnsureOdPair(&ds, o3, stadium);
  RefreshOdArtifacts(&ds, &rng);

  // Out-of-towners pour in from the highways; locals trickle in.
  SetOdRhythm(&ds, out.od_o1, RhythmProfile::kEventArrival, 250.0, &rng);
  SetOdRhythm(&ds, out.od_o2, RhythmProfile::kEventArrival, 60.0, &rng);
  SetOdRhythm(&ds, out.od_o3, RhythmProfile::kEventArrival, 220.0, &rng);
  RefreshLehd(&ds, &rng);
  return out;
}

}  // namespace ovs::data
