#ifndef OVS_DATA_TRAJECTORIES_H_
#define OVS_DATA_TRAJECTORIES_H_

#include <vector>

#include "od/region.h"
#include "od/tod_tensor.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace ovs::data {

/// The paper's §V-B data-preprocess front-end, rebuilt synthetically: real
/// deployments observe a *subset* of vehicles (taxis) as GPS trajectories,
/// extract the taxi TOD from them, and scale by the taxi share to estimate
/// the all-vehicle TOD. These helpers reproduce that chain on simulator
/// traces.

/// Samples a taxi fleet: keeps each completed vehicle trace with probability
/// `taxi_fraction` (i.i.d.), mimicking that only taxis log GPS.
std::vector<sim::VehicleTrace> SampleTaxiFleet(
    const std::vector<sim::VehicleTrace>& all_vehicles, double taxi_fraction,
    Rng* rng);

/// Map-matches a trace to an OD pair: origin region = region of the first
/// link's upstream intersection, destination = region of the last link's
/// downstream intersection. Returns -1 when either end lies outside the
/// partition or the OD pair is not in `od_set`.
int MatchTraceToOd(const sim::VehicleTrace& trace, const sim::RoadNet& net,
                   const od::RegionPartition& regions, const od::OdSet& od_set);

/// Buckets matched traces by departure interval into a TOD tensor
/// ("the TOD inferred from trajectory data", paper Fig. 1).
od::TodTensor ExtractTodFromTrajectories(
    const std::vector<sim::VehicleTrace>& traces, const sim::RoadNet& net,
    const od::RegionPartition& regions, const od::OdSet& od_set,
    double interval_s, int num_intervals);

/// Scales a taxi TOD by (# all vehicles / # taxis) — the paper's
/// "city-specific factor". `taxi_fraction` in (0, 1].
od::TodTensor ScaleTaxiTod(const od::TodTensor& taxi_tod, double taxi_fraction);

/// Probe-vehicle speed feed: the per-link speed a map service would compute
/// from `probe_fraction` of vehicles reporting their speeds. Links/intervals
/// with no probe observation fall back to `fallback` (e.g., free-flow, or
/// the previous interval). Compare paper §I: "the average speed on a road
/// segment can be easily probed by a few vehicles".
struct ProbeSpeedOptions {
  double probe_fraction = 0.1;
  /// Gaussian noise stddev (m/s) on each probe's reported speed.
  double probe_noise_mps = 0.5;
};

/// Builds the probe-derived speed tensor from vehicle traces: each probe
/// vehicle contributes its per-link average speed (link length / traversal
/// time) to the (link, interval of entry) bucket. Unobserved cells take the
/// free-flow speed of the link.
DMat ProbeSpeedTensor(const std::vector<sim::VehicleTrace>& traces,
                      const sim::RoadNet& net, double interval_s,
                      int num_intervals, const ProbeSpeedOptions& options,
                      Rng* rng);

}  // namespace ovs::data

#endif  // OVS_DATA_TRAJECTORIES_H_
