#include "baselines/genetic.h"

#include <algorithm>

#include "baselines/observation.h"

namespace ovs::baselines {

StatusOr<od::TodTensor> GeneticEstimator::Recover(
    const EstimatorContext& ctx, const DMat& observed_speed) {
  CHECK(ctx.dataset != nullptr);
  CHECK(ctx.oracle);
  const data::Dataset& ds = *ctx.dataset;
  ASSIGN_OR_RETURN(const MaskedObservation obs,
                   MaskObservation(observed_speed));
  Rng rng(ctx.seed * 7919 + 13);

  const int n_od = ds.num_od();
  const int t_count = ds.num_intervals();
  const double init_max = params_.init_max_trips;

  struct Individual {
    od::TodTensor tod;
    double fitness = 0.0;  // negative speed RMSE
  };

  auto evaluate = [&](Individual* ind) {
    const core::TrainingSample sim = ctx.oracle(ind->tod);
    // Fitness ignores invalid observation cells instead of chasing NaNs.
    ind->fitness = -MaskedRmse(sim.speed, obs.speed, obs.mask);
  };

  std::vector<Individual> population(params_.population);
  for (Individual& ind : population) {
    ind.tod = od::TodTensor(n_od, t_count);
    for (int i = 0; i < n_od; ++i) {
      for (int t = 0; t < t_count; ++t) {
        ind.tod.at(i, t) = rng.Uniform(0.0, init_max);
      }
    }
    evaluate(&ind);
  }

  const double mutation_stddev = init_max * params_.mutation_stddev_fraction;
  for (int gen = 0; gen < params_.generations; ++gen) {
    std::stable_sort(population.begin(), population.end(),
                     [](const Individual& a, const Individual& b) {
                       return a.fitness > b.fitness;
                     });
    const int elites = std::min(params_.elites, params_.population);
    std::vector<Individual> next(population.begin(), population.begin() + elites);
    while (static_cast<int>(next.size()) < params_.population) {
      // Tournament parents drawn from the elite half.
      const int half = std::max(2, params_.population / 2);
      const Individual& pa = population[rng.UniformInt(0, half - 1)];
      const Individual& pb = population[rng.UniformInt(0, half - 1)];
      Individual child;
      child.tod = od::TodTensor(n_od, t_count);
      for (int i = 0; i < n_od; ++i) {
        for (int t = 0; t < t_count; ++t) {
          double cell = rng.Bernoulli(0.5) ? pa.tod.at(i, t) : pb.tod.at(i, t);
          if (rng.Bernoulli(params_.mutation_rate)) {
            cell += rng.Gaussian(0.0, mutation_stddev);
          }
          child.tod.at(i, t) = std::max(0.0, cell);
        }
      }
      evaluate(&child);
      next.push_back(std::move(child));
    }
    population = std::move(next);
  }

  auto best = std::max_element(population.begin(), population.end(),
                               [](const Individual& a, const Individual& b) {
                                 return a.fitness < b.fitness;
                               });
  return best->tod;
}

}  // namespace ovs::baselines
