#ifndef OVS_BASELINES_OVS_ESTIMATOR_H_
#define OVS_BASELINES_OVS_ESTIMATOR_H_

#include "baselines/estimator.h"
#include "core/trainer.h"

namespace ovs::baselines {

/// Adapter putting the full OVS pipeline behind the OdEstimator interface:
/// Recover() runs the paper's complete protocol — stage-1 V2S training,
/// stage-2 TOD2V training (both on the generated data only), then test-time
/// TOD Generation fitting against the observed speed, optionally with
/// auxiliary losses built from the dataset's feeds.
class OvsEstimator : public OdEstimator {
 public:
  struct Params {
    core::OvsConfig model;            ///< scales are overwritten from ctx.train
    core::TrainerConfig trainer;
    core::OvsModel::Options ablation; ///< Table IX switches
    core::AuxLossWeights aux;         ///< zero weights = pure main loss
    std::string display_name = "OVS";
  };

  OvsEstimator() : OvsEstimator(Params()) {}
  explicit OvsEstimator(Params params) : params_(std::move(params)) {}

  std::string name() const override { return params_.display_name; }
  [[nodiscard]] StatusOr<od::TodTensor> Recover(
      const EstimatorContext& ctx,
      const DMat& observed_speed) override;

  /// Final recovery main-loss of the last Recover call (normalized units).
  double last_recovery_loss() const { return last_recovery_loss_; }

 private:
  Params params_;
  double last_recovery_loss_ = 0.0;
};

}  // namespace ovs::baselines

#endif  // OVS_BASELINES_OVS_ESTIMATOR_H_
