#ifndef OVS_BASELINES_NN_BASELINE_H_
#define OVS_BASELINES_NN_BASELINE_H_

#include "baselines/estimator.h"

namespace ovs::baselines {

/// Direct neural regression (paper §V-F "NN", [34]): two fully connected
/// layers mapping the city speed snapshot of one interval to that interval's
/// TOD column. Trained per-interval across all generated samples; recovery
/// is a single forward pass on the observed speed.
class NnEstimator : public OdEstimator {
 public:
  struct Params {
    int hidden = 64;
    int epochs = 150;
    float lr = 3e-3f;
  };

  NnEstimator() : NnEstimator(Params()) {}
  explicit NnEstimator(Params params) : params_(params) {}

  std::string name() const override { return "NN"; }
  [[nodiscard]] StatusOr<od::TodTensor> Recover(
      const EstimatorContext& ctx,
      const DMat& observed_speed) override;

 private:
  Params params_;
};

/// Sequence-to-sequence LSTM baseline (paper §V-F "LSTM", [35]): two LSTM
/// layers consume the speed snapshot sequence and an FC head emits the TOD
/// column per interval.
class LstmEstimator : public OdEstimator {
 public:
  struct Params {
    int hidden = 48;
    int epochs = 100;
    float lr = 3e-3f;
  };

  LstmEstimator() : LstmEstimator(Params()) {}
  explicit LstmEstimator(Params params) : params_(params) {}

  std::string name() const override { return "LSTM"; }
  [[nodiscard]] StatusOr<od::TodTensor> Recover(
      const EstimatorContext& ctx,
      const DMat& observed_speed) override;

 private:
  Params params_;
};

}  // namespace ovs::baselines

#endif  // OVS_BASELINES_NN_BASELINE_H_
