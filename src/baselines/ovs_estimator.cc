#include "baselines/ovs_estimator.h"

#include <vector>

namespace ovs::baselines {

StatusOr<od::TodTensor> OvsEstimator::Recover(const EstimatorContext& ctx,
                                              const DMat& observed_speed) {
  CHECK(ctx.dataset != nullptr);
  CHECK(ctx.train != nullptr);
  const data::Dataset& ds = *ctx.dataset;
  const core::TrainingData& train = *ctx.train;
  Rng rng(ctx.seed * 2654435761u + 3);

  core::OvsConfig config = params_.model;
  config.tod_scale = static_cast<float>(train.tod_scale);
  config.volume_norm = static_cast<float>(train.volume_norm);
  config.speed_scale = static_cast<float>(train.speed_scale);

  core::OvsModel model(ds.num_od(), ds.num_links(), ds.num_intervals(),
                       ds.incidence, config, &rng, params_.ablation);
  core::OvsTrainer trainer(&model, params_.trainer);
  // Loss curves are diagnostics; the estimator only needs the fitted weights,
  // but a stage that diverged past its retry budget is a hard failure.
  RETURN_IF_ERROR(trainer.TrainVolumeSpeed(train).status());
  RETURN_IF_ERROR(trainer.TrainTodVolume(train).status());

  core::AuxLossSet aux(params_.aux);
  if (params_.aux.census > 0.0f && !ds.lehd_od_totals.empty()) {
    aux.SetCensusTargets(ds.lehd_od_totals, train.tod_scale,
                         ds.num_intervals());
  }
  if (params_.aux.camera > 0.0f && ctx.camera_volume != nullptr &&
      !ds.camera_links.empty()) {
    std::vector<int> links(ds.camera_links.begin(), ds.camera_links.end());
    aux.SetCameraObservations(links, *ctx.camera_volume, train.volume_norm);
  }
  if (params_.aux.speed_limit > 0.0f) {
    std::vector<double> limits;
    limits.reserve(ds.net.num_links());
    for (const sim::Link& l : ds.net.links()) {
      limits.push_back(l.speed_limit_mps);
    }
    aux.SetSpeedLimits(limits, ds.num_intervals(), train.speed_scale);
  }

  ASSIGN_OR_RETURN(od::TodTensor recovered,
                   trainer.RecoverTod(observed_speed,
                                      aux.active() ? &aux : nullptr, &rng));
  last_recovery_loss_ = trainer.last_recovery_loss();
  return recovered;
}

}  // namespace ovs::baselines
