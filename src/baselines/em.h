#ifndef OVS_BASELINES_EM_H_
#define OVS_BASELINES_EM_H_

#include "baselines/estimator.h"

namespace ovs::baselines {

/// EM baseline (paper §V-F, [19], [33]): a linear-Gaussian generative model
/// v_t = B g_t + c + eps with Gaussian TOD prior g_t ~ N(mu, sigma0^2 I).
/// B, c come from ridge least squares on the training triples; EM then
/// alternates posterior inference of g_t given the observed speed (E step)
/// with re-estimation of the prior mean and noise variance (M step).
class EmEstimator : public OdEstimator {
 public:
  struct Params {
    double ridge_lambda = 1.0;
    int em_iterations = 10;
    double min_noise_var = 1e-3;
  };

  EmEstimator() : EmEstimator(Params()) {}
  explicit EmEstimator(Params params) : params_(params) {}

  std::string name() const override { return "EM"; }
  [[nodiscard]] StatusOr<od::TodTensor> Recover(
      const EstimatorContext& ctx,
      const DMat& observed_speed) override;

 private:
  Params params_;
};

}  // namespace ovs::baselines

#endif  // OVS_BASELINES_EM_H_
