#include "baselines/observation.h"

#include <cmath>

namespace ovs::baselines {

StatusOr<MaskedObservation> MaskObservation(const DMat& observed_speed) {
  MaskedObservation out;
  out.speed = observed_speed;
  out.mask = DMat(observed_speed.rows(), observed_speed.cols());

  double global_sum = 0.0;
  int global_valid = 0;
  for (int l = 0; l < observed_speed.rows(); ++l) {
    for (int t = 0; t < observed_speed.cols(); ++t) {
      if (std::isfinite(observed_speed.at(l, t))) {
        out.mask.at(l, t) = 1.0;
        global_sum += observed_speed.at(l, t);
        ++global_valid;
      } else {
        ++out.invalid_cells;
      }
    }
  }
  if (global_valid == 0) {
    return Status::InvalidArgument(
        "observed speed has no finite cells (" +
        std::to_string(out.invalid_cells) + " invalid)");
  }
  if (out.invalid_cells == 0) return out;

  const double global_mean = global_sum / global_valid;
  for (int l = 0; l < observed_speed.rows(); ++l) {
    double link_sum = 0.0;
    int link_valid = 0;
    for (int t = 0; t < observed_speed.cols(); ++t) {
      if (out.mask.at(l, t) != 0.0) {
        link_sum += observed_speed.at(l, t);
        ++link_valid;
      }
    }
    const double fill = link_valid > 0 ? link_sum / link_valid : global_mean;
    for (int t = 0; t < observed_speed.cols(); ++t) {
      if (out.mask.at(l, t) == 0.0) out.speed.at(l, t) = fill;
    }
  }
  return out;
}

double MaskedRmse(const DMat& a, const DMat& b, const DMat& mask) {
  CHECK(a.SameShape(b));
  CHECK(a.SameShape(mask));
  double acc = 0.0;
  int valid = 0;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      if (mask.at(r, c) == 0.0) continue;
      const double d = a.at(r, c) - b.at(r, c);
      acc += d * d;
      ++valid;
    }
  }
  CHECK_GT(valid, 0) << "MaskedRmse: mask has no valid cells";
  return std::sqrt(acc / valid);
}

}  // namespace ovs::baselines
