#include "baselines/gravity.h"

#include <limits>

#include "baselines/observation.h"

namespace ovs::baselines {

GravityEstimator::GravityEstimator(std::vector<double> mean_cell_candidates)
    : mean_cell_candidates_(std::move(mean_cell_candidates)) {
  CHECK(!mean_cell_candidates_.empty());
}

std::vector<double> GravityEstimator::GravityWeights(
    const data::Dataset& dataset) {
  std::vector<double> weights(dataset.num_od());
  for (int i = 0; i < dataset.num_od(); ++i) {
    const od::OdPair& pair = dataset.od_set.pair(i);
    const double dist =
        std::max(1.0, dataset.regions.Distance(pair.origin, pair.dest));
    weights[i] = dataset.regions.region(pair.origin).population *
                 dataset.regions.region(pair.dest).population / (dist * dist);
  }
  return weights;
}

StatusOr<od::TodTensor> GravityEstimator::Recover(
    const EstimatorContext& ctx, const DMat& observed_speed) {
  CHECK(ctx.dataset != nullptr);
  CHECK(ctx.oracle);
  const data::Dataset& ds = *ctx.dataset;
  ASSIGN_OR_RETURN(const MaskedObservation obs,
                   MaskObservation(observed_speed));

  std::vector<double> weights = GravityWeights(ds);
  double mean_weight = 0.0;
  for (double w : weights) mean_weight += w;
  mean_weight /= weights.size();
  CHECK_GT(mean_weight, 0.0);

  od::TodTensor best(ds.num_od(), ds.num_intervals());
  double best_rmse = std::numeric_limits<double>::infinity();
  for (double mean_cell : mean_cell_candidates_) {
    const double k = mean_cell / mean_weight;
    od::TodTensor candidate(ds.num_od(), ds.num_intervals());
    for (int i = 0; i < ds.num_od(); ++i) {
      for (int t = 0; t < ds.num_intervals(); ++t) {
        candidate.at(i, t) = k * weights[i];
      }
    }
    const core::TrainingSample sim = ctx.oracle(candidate);
    // k calibration scores only the valid observation cells.
    const double rmse = MaskedRmse(sim.speed, obs.speed, obs.mask);
    if (rmse < best_rmse) {
      best_rmse = rmse;
      best = candidate;
    }
  }
  return best;
}

}  // namespace ovs::baselines
