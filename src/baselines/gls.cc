#include "baselines/gls.h"

#include <algorithm>

#include "baselines/observation.h"
#include "nn/convert.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "util/linalg.h"

namespace ovs::baselines {

namespace {

/// Stacks the time columns of every sample side by side: [rows x T*S].
DMat StackColumns(const std::vector<const DMat*>& mats) {
  CHECK(!mats.empty());
  const int rows = mats[0]->rows();
  int total_cols = 0;
  for (const DMat* m : mats) {
    CHECK_EQ(m->rows(), rows);
    total_cols += m->cols();
  }
  DMat out(rows, total_cols);
  int offset = 0;
  for (const DMat* m : mats) {
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < m->cols(); ++c) out.at(r, offset + c) = m->at(r, c);
    }
    offset += m->cols();
  }
  return out;
}

}  // namespace

StatusOr<od::TodTensor> GlsEstimator::Recover(const EstimatorContext& ctx,
                                              const DMat& observed_speed) {
  CHECK(ctx.dataset != nullptr);
  CHECK(ctx.train != nullptr);
  CHECK(!ctx.train->samples.empty());
  const data::Dataset& ds = *ctx.dataset;
  const core::TrainingData& train = *ctx.train;
  ASSIGN_OR_RETURN(const MaskedObservation obs,
                   MaskObservation(observed_speed));
  Rng rng(ctx.seed * 104729 + 7);

  // 1) Fit the linear assignment A:  Q ≈ A G  over all stacked columns.
  std::vector<const DMat*> g_mats, q_mats;
  for (const core::TrainingSample& s : train.samples) {
    g_mats.push_back(&s.tod.mat());
    q_mats.push_back(&s.volume);
  }
  const DMat g_all = StackColumns(g_mats);
  const DMat q_all = StackColumns(q_mats);
  StatusOr<DMat> assignment = RidgeFitLeft(q_all, g_all, params_.ridge_lambda);
  CHECK(assignment.ok()) << assignment.status();
  const nn::Tensor a_matrix = nn::FromDMat(assignment.value());

  // 2) Train the stacked speed net: volume [M x T] -> speed, FC over time.
  const float vol_norm = static_cast<float>(train.volume_norm);
  const float spd_scale = static_cast<float>(train.speed_scale);
  const int t_count = ds.num_intervals();
  nn::Linear fc1(t_count, params_.speed_net_hidden, &rng);
  nn::Linear fc2(params_.speed_net_hidden, t_count, &rng);
  auto speed_net = [&](const nn::Variable& q) {
    nn::Variable q_norm = nn::ScalarMul(q, 1.0f / vol_norm);
    nn::Variable h = nn::Sigmoid(fc1.Forward(q_norm));
    return nn::ScalarMul(nn::Sigmoid(fc2.Forward(h)), spd_scale);
  };
  {
    std::vector<nn::Variable> params = fc1.Parameters();
    for (const nn::Variable& p : fc2.Parameters()) params.push_back(p);
    nn::Adam opt(params, params_.speed_net_lr);
    for (int epoch = 0; epoch < params_.speed_net_epochs; ++epoch) {
      for (const core::TrainingSample& s : train.samples) {
        opt.ZeroGrad();
        nn::Variable q(nn::FromDMat(s.volume), /*requires_grad=*/false);
        nn::Variable v = speed_net(q);
        nn::Tensor target = nn::FromDMat(s.speed);
        target.ScaleInPlace(1.0f / spd_scale);
        nn::Variable loss =
            nn::MseLoss(nn::ScalarMul(v, 1.0f / spd_scale), target);
        loss.Backward();
        opt.ClipGrad(1.0f);
        opt.Step();
      }
    }
  }

  // 3) Recover g by gradient descent through speed_net(A g). Invalid
  // observation cells are excluded from the loss via the mask (the imputed
  // values in obs.speed never drive the recovery gradient).
  nn::Tensor v_obs = nn::FromDMat(obs.speed);
  v_obs.ScaleInPlace(1.0f / spd_scale);
  const nn::Tensor obs_mask = nn::FromDMat(obs.mask);
  const float init = static_cast<float>(train.tod_scale) * 0.3f;
  nn::Variable g(nn::Tensor::Full({ds.num_od(), t_count}, init),
                 /*requires_grad=*/true);
  nn::Adam opt({g}, params_.recovery_lr);
  const float g_max = static_cast<float>(train.tod_scale) * 1.5f;
  for (int it = 0; it < params_.recovery_iters; ++it) {
    opt.ZeroGrad();
    nn::Variable q = nn::MatMul(nn::Variable(a_matrix, false), g);
    nn::Variable v = speed_net(q);
    nn::Variable v_norm = nn::ScalarMul(v, 1.0f / spd_scale);
    nn::Variable loss = obs.complete()
                            ? nn::MseLoss(v_norm, v_obs)
                            : nn::MaskedMseLoss(v_norm, v_obs, obs_mask);
    loss.Backward();
    opt.Step();
    // Project onto the feasible box [0, g_max].
    for (int i = 0; i < g.numel(); ++i) {
      g.mutable_value()[i] = std::clamp(g.mutable_value()[i], 0.0f, g_max);
    }
  }
  return od::TodTensor(nn::ToDMat(g.value()));
}

}  // namespace ovs::baselines
