#include "baselines/nn_baseline.h"

#include "baselines/observation.h"
#include "nn/convert.h"
#include "nn/layers.h"
#include "nn/optimizer.h"

namespace ovs::baselines {

namespace {

/// Transposed, normalized view of a [M x T] measurement as rows-per-interval
/// [T x M] float tensor.
nn::Tensor IntervalRows(const DMat& m, double scale) {
  nn::Tensor t({m.cols(), m.rows()});
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) {
      t.at(c, r) = static_cast<float>(m.at(r, c) / scale);
    }
  }
  return t;
}

/// [T x N_od] normalized prediction back to a TodTensor (trip units).
od::TodTensor FromIntervalRows(const nn::Tensor& t, double scale) {
  od::TodTensor tod(t.dim(1), t.dim(0));
  for (int row = 0; row < t.dim(0); ++row) {
    for (int col = 0; col < t.dim(1); ++col) {
      tod.at(col, row) = std::max(0.0, static_cast<double>(t.at(row, col)) * scale);
    }
  }
  return tod;
}

}  // namespace

StatusOr<od::TodTensor> NnEstimator::Recover(const EstimatorContext& ctx,
                                             const DMat& observed_speed) {
  CHECK(ctx.dataset != nullptr);
  CHECK(ctx.train != nullptr);
  CHECK(!ctx.train->samples.empty());
  const data::Dataset& ds = *ctx.dataset;
  const core::TrainingData& train = *ctx.train;
  ASSIGN_OR_RETURN(const MaskedObservation obs,
                   MaskObservation(observed_speed));
  Rng rng(ctx.seed * 31337 + 11);

  nn::Linear fc1(ds.num_links(), params_.hidden, &rng);
  nn::Linear fc2(params_.hidden, ds.num_od(), &rng);
  auto forward = [&](const nn::Variable& x) {
    return nn::Sigmoid(fc2.Forward(nn::Sigmoid(fc1.Forward(x))));
  };

  std::vector<nn::Tensor> inputs, targets;
  for (const core::TrainingSample& s : train.samples) {
    inputs.push_back(IntervalRows(s.speed, train.speed_scale));
    targets.push_back(IntervalRows(s.tod.mat(), train.tod_scale));
  }

  std::vector<nn::Variable> params = fc1.Parameters();
  for (const nn::Variable& p : fc2.Parameters()) params.push_back(p);
  nn::Adam opt(params, params_.lr);
  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    for (size_t i = 0; i < inputs.size(); ++i) {
      opt.ZeroGrad();
      nn::Variable x(inputs[i], /*requires_grad=*/false);
      nn::Variable loss = nn::MseLoss(forward(x), targets[i]);
      loss.Backward();
      opt.ClipGrad(1.0f);
      opt.Step();
    }
  }

  // Feedforward nets cannot represent a hole, so inference runs on the
  // imputed copy (per-link valid means) rather than raw NaNs.
  nn::Variable x(IntervalRows(obs.speed, train.speed_scale), false);
  return FromIntervalRows(forward(x).value(), train.tod_scale);
}

StatusOr<od::TodTensor> LstmEstimator::Recover(const EstimatorContext& ctx,
                                               const DMat& observed_speed) {
  CHECK(ctx.dataset != nullptr);
  CHECK(ctx.train != nullptr);
  CHECK(!ctx.train->samples.empty());
  const data::Dataset& ds = *ctx.dataset;
  const core::TrainingData& train = *ctx.train;
  ASSIGN_OR_RETURN(const MaskedObservation obs,
                   MaskObservation(observed_speed));
  Rng rng(ctx.seed * 60013 + 29);

  nn::Lstm lstm1(ds.num_links(), params_.hidden, &rng);
  nn::Lstm lstm2(params_.hidden, params_.hidden, &rng);
  nn::Linear head(params_.hidden, ds.num_od(), &rng);

  // Forward: speed sequence [T rows of [1 x M]] -> TOD rows [T x N_od].
  auto forward = [&](const nn::Tensor& speed_rows) {
    const int t_count = speed_rows.dim(0);
    const int m_links = speed_rows.dim(1);
    std::vector<nn::Variable> xs;
    xs.reserve(t_count);
    for (int t = 0; t < t_count; ++t) {
      nn::Tensor row({1, m_links});
      for (int l = 0; l < m_links; ++l) row.at(0, l) = speed_rows.at(t, l);
      xs.emplace_back(std::move(row), /*requires_grad=*/false);
    }
    std::vector<nn::Variable> h = lstm2.Forward(lstm1.Forward(xs));
    std::vector<nn::Variable> out;
    out.reserve(t_count);
    for (int t = 0; t < t_count; ++t) {
      out.push_back(nn::Sigmoid(head.Forward(h[t])));
    }
    return out;  // T tensors of [1 x N_od]
  };

  std::vector<nn::Tensor> inputs, targets;
  for (const core::TrainingSample& s : train.samples) {
    inputs.push_back(IntervalRows(s.speed, train.speed_scale));
    targets.push_back(IntervalRows(s.tod.mat(), train.tod_scale));
  }

  std::vector<nn::Variable> params = lstm1.Parameters();
  for (const nn::Variable& p : lstm2.Parameters()) params.push_back(p);
  for (const nn::Variable& p : head.Parameters()) params.push_back(p);
  nn::Adam opt(params, params_.lr);

  const int t_count = ds.num_intervals();
  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    for (size_t i = 0; i < inputs.size(); ++i) {
      opt.ZeroGrad();
      std::vector<nn::Variable> preds = forward(inputs[i]);
      nn::Variable loss(nn::Tensor::Scalar(0.0f));
      for (int t = 0; t < t_count; ++t) {
        nn::Tensor row({1, ds.num_od()});
        for (int i_od = 0; i_od < ds.num_od(); ++i_od) {
          row.at(0, i_od) = targets[i].at(t, i_od);
        }
        loss = nn::Add(loss, nn::MseLoss(preds[t], row));
      }
      loss = nn::ScalarMul(loss, 1.0f / t_count);
      loss.Backward();
      opt.ClipGrad(1.0f);
      opt.Step();
    }
  }

  nn::Tensor obs_rows = IntervalRows(obs.speed, train.speed_scale);
  std::vector<nn::Variable> preds = forward(obs_rows);
  od::TodTensor tod(ds.num_od(), t_count);
  for (int t = 0; t < t_count; ++t) {
    for (int i = 0; i < ds.num_od(); ++i) {
      tod.at(i, t) =
          std::max(0.0, static_cast<double>(preds[t].value().at(0, i)) *
                            train.tod_scale);
    }
  }
  return tod;
}

}  // namespace ovs::baselines
