#ifndef OVS_BASELINES_GRAVITY_H_
#define OVS_BASELINES_GRAVITY_H_

#include "baselines/estimator.h"

namespace ovs::baselines {

/// Gravity model (paper §V-F): g_{i,j} = k * p_i * p_j / d_{i,j}^2 with a
/// single k tuned by grid search (against the speed observation via the
/// simulator oracle) and kept constant across time intervals — so the
/// recovered TOD is flat in time by construction.
class GravityEstimator : public OdEstimator {
 public:
  /// `k_candidates` mean-cell values (trips per OD-interval) scanned by the
  /// grid search.
  explicit GravityEstimator(std::vector<double> mean_cell_candidates =
                                {2.0, 5.0, 10.0, 20.0, 35.0, 55.0, 80.0});

  std::string name() const override { return "Gravity"; }
  [[nodiscard]] StatusOr<od::TodTensor> Recover(
      const EstimatorContext& ctx,
      const DMat& observed_speed) override;

  /// The unscaled gravity weights u_i = p_o * p_d / d^2 per OD pair.
  static std::vector<double> GravityWeights(const data::Dataset& dataset);

 private:
  std::vector<double> mean_cell_candidates_;
};

}  // namespace ovs::baselines

#endif  // OVS_BASELINES_GRAVITY_H_
