#include "baselines/em.h"

#include <algorithm>
#include <cmath>

#include "baselines/observation.h"
#include "util/linalg.h"

namespace ovs::baselines {

StatusOr<od::TodTensor> EmEstimator::Recover(const EstimatorContext& ctx,
                                             const DMat& observed_speed) {
  CHECK(ctx.dataset != nullptr);
  CHECK(ctx.train != nullptr);
  CHECK(!ctx.train->samples.empty());
  const data::Dataset& ds = *ctx.dataset;
  const core::TrainingData& train = *ctx.train;
  const int n_od = ds.num_od();
  const int t_count = ds.num_intervals();
  const int m_links = ds.num_links();
  CHECK_EQ(observed_speed.rows(), m_links);
  CHECK_EQ(observed_speed.cols(), t_count);
  ASSIGN_OR_RETURN(const MaskedObservation obs,
                   MaskObservation(observed_speed));

  // --- Fit v = B g + c by ridge LS with a bias row of ones. ---
  int total_cols = 0;
  for (const core::TrainingSample& s : train.samples) total_cols += s.tod.num_intervals();
  DMat g_aug(n_od + 1, total_cols);
  DMat v_all(m_links, total_cols);
  int offset = 0;
  for (const core::TrainingSample& s : train.samples) {
    for (int t = 0; t < s.tod.num_intervals(); ++t) {
      for (int i = 0; i < n_od; ++i) g_aug.at(i, offset + t) = s.tod.at(i, t);
      g_aug.at(n_od, offset + t) = 1.0;
      for (int l = 0; l < m_links; ++l) {
        v_all.at(l, offset + t) = s.speed.at(l, t);
      }
    }
    offset += s.tod.num_intervals();
  }
  StatusOr<DMat> fit = RidgeFitLeft(v_all, g_aug, params_.ridge_lambda);
  CHECK(fit.ok()) << fit.status();
  DMat b_matrix(m_links, n_od);
  std::vector<double> bias(m_links);
  for (int l = 0; l < m_links; ++l) {
    for (int i = 0; i < n_od; ++i) b_matrix.at(l, i) = fit->at(l, i);
    bias[l] = fit->at(l, n_od);
  }

  // --- Initialize prior from the training TOD distribution. ---
  double prior_mean = 0.0, prior_sq = 0.0;
  int cells = 0;
  for (const core::TrainingSample& s : train.samples) {
    for (int i = 0; i < n_od; ++i) {
      for (int t = 0; t < s.tod.num_intervals(); ++t) {
        prior_mean += s.tod.at(i, t);
        prior_sq += s.tod.at(i, t) * s.tod.at(i, t);
        ++cells;
      }
    }
  }
  prior_mean /= cells;
  double prior_var =
      std::max(1.0, prior_sq / cells - prior_mean * prior_mean);

  std::vector<double> mu(n_od, prior_mean);
  double noise_var = 1.0;

  const DMat bt = TransposeD(b_matrix);
  od::TodTensor recovered(n_od, t_count);

  for (int iter = 0; iter < params_.em_iterations; ++iter) {
    // E step: posterior mean per interval.
    // S = B Sigma0 B^T + noise I  (Sigma0 = prior_var I)
    DMat s_matrix = MatMulD(b_matrix, bt);
    s_matrix *= prior_var;
    for (int l = 0; l < m_links; ++l) s_matrix.at(l, l) += noise_var;

    // Residual matrix R[l, t] = v_obs - B mu - c. Invalid observation cells
    // contribute zero residual, i.e. the posterior falls back to the prior
    // there instead of absorbing NaN corrections.
    DMat residual(m_links, t_count);
    for (int l = 0; l < m_links; ++l) {
      double b_mu = bias[l];
      for (int i = 0; i < n_od; ++i) b_mu += b_matrix.at(l, i) * mu[i];
      for (int t = 0; t < t_count; ++t) {
        residual.at(l, t) =
            obs.mask.at(l, t) > 0.0 ? obs.speed.at(l, t) - b_mu : 0.0;
      }
    }
    StatusOr<DMat> solved = SolveLinearD(s_matrix, residual);
    CHECK(solved.ok()) << solved.status();
    // g_t = mu + prior_var * B^T * solved_t
    const DMat gain = MatMulD(bt, solved.value());  // [n_od x t]
    for (int i = 0; i < n_od; ++i) {
      for (int t = 0; t < t_count; ++t) {
        recovered.at(i, t) = std::max(0.0, mu[i] + prior_var * gain.at(i, t));
      }
    }

    // M step: prior mean from the posterior; noise from reconstruction.
    for (int i = 0; i < n_od; ++i) {
      double acc = 0.0;
      for (int t = 0; t < t_count; ++t) acc += recovered.at(i, t);
      mu[i] = acc / t_count;
    }
    double err = 0.0;
    int valid = 0;
    for (int t = 0; t < t_count; ++t) {
      for (int l = 0; l < m_links; ++l) {
        if (obs.mask.at(l, t) == 0.0) continue;
        double pred = bias[l];
        for (int i = 0; i < n_od; ++i) {
          pred += b_matrix.at(l, i) * recovered.at(i, t);
        }
        const double d = obs.speed.at(l, t) - pred;
        err += d * d;
        ++valid;
      }
    }
    noise_var =
        std::max(params_.min_noise_var, err / static_cast<double>(valid));
  }
  return recovered;
}

}  // namespace ovs::baselines
