#ifndef OVS_BASELINES_GLS_H_
#define OVS_BASELINES_GLS_H_

#include "baselines/estimator.h"

namespace ovs::baselines {

/// Generalized least squares baseline (paper §V-F, [3]-[6]): assumes a
/// static linear assignment matrix A mapping TOD to link volume
/// (q_t = A g_t), estimated by ridge-regularized least squares on the
/// generated training data; a two-layer neural net stacked behind A predicts
/// speed from volume. Recovery solves for g by gradient descent through the
/// fixed chain NN(A g) against the observed speed.
class GlsEstimator : public OdEstimator {
 public:
  struct Params {
    double ridge_lambda = 1.0;
    int speed_net_hidden = 32;
    int speed_net_epochs = 120;
    float speed_net_lr = 3e-3f;
    int recovery_iters = 250;
    float recovery_lr = 2.0f;  ///< on raw trip counts, hence large
  };

  GlsEstimator() : GlsEstimator(Params()) {}
  explicit GlsEstimator(Params params) : params_(params) {}

  std::string name() const override { return "GLS"; }
  [[nodiscard]] StatusOr<od::TodTensor> Recover(
      const EstimatorContext& ctx,
      const DMat& observed_speed) override;

 private:
  Params params_;
};

}  // namespace ovs::baselines

#endif  // OVS_BASELINES_GLS_H_
