#ifndef OVS_BASELINES_OBSERVATION_H_
#define OVS_BASELINES_OBSERVATION_H_

#include "util/mat.h"
#include "util/status.h"

namespace ovs::baselines {

/// A degraded observed-speed matrix split into what every baseline needs:
/// an imputed dense copy it can feed to nets and simulator comparisons, and
/// the validity mask that keeps invalid cells out of losses and fitness
/// scores. This is the single sanctioned way for estimators to read
/// observed speed — the `unguarded-observed-speed` lint rule fences direct
/// element access inside src/baselines/.
struct MaskedObservation {
  /// Copy of the observation with every non-finite cell imputed: per-link
  /// mean of that link's valid cells, or the global valid mean for fully
  /// dark links. Identical to the input when the observation is complete.
  DMat speed;
  /// 1.0 where the original cell was finite, 0.0 where it was not.
  DMat mask;
  int invalid_cells = 0;
  bool complete() const { return invalid_cells == 0; }
};

/// Builds the masked view. InvalidArgument when the observation has no
/// finite cell at all (nothing can be recovered from a fully dark city).
[[nodiscard]] StatusOr<MaskedObservation> MaskObservation(
    const DMat& observed_speed);

/// RMSE over the cells where `mask` is non-zero. Bitwise-identical to
/// util Rmse when the mask is all ones (same accumulation order), so clean
/// observations reproduce the pre-mask results exactly.
[[nodiscard]] double MaskedRmse(const DMat& a, const DMat& b,
                                const DMat& mask);

}  // namespace ovs::baselines

#endif  // OVS_BASELINES_OBSERVATION_H_
