#ifndef OVS_BASELINES_GENETIC_H_
#define OVS_BASELINES_GENETIC_H_

#include "baselines/estimator.h"

namespace ovs::baselines {

/// Genetic search over TOD tensors (paper §V-F, [32]): a population of
/// candidate tensors is scored by how well their simulated speed matches the
/// observation; elites survive, crossover mixes cells, mutation adds
/// Gaussian noise. The oracle (microscopic simulator) is the fitness
/// function, so generations are the dominant cost.
class GeneticEstimator : public OdEstimator {
 public:
  struct Params {
    int population = 12;
    int generations = 8;
    int elites = 3;            ///< carried over unchanged
    double mutation_rate = 0.25;
    double mutation_stddev_fraction = 0.15;  ///< of the init range
    double init_max_trips = 60.0;            ///< uniform init upper bound
  };

  GeneticEstimator() : GeneticEstimator(Params()) {}
  explicit GeneticEstimator(Params params) : params_(params) {}

  std::string name() const override { return "Genetic"; }
  [[nodiscard]] StatusOr<od::TodTensor> Recover(
      const EstimatorContext& ctx,
      const DMat& observed_speed) override;

 private:
  Params params_;
};

}  // namespace ovs::baselines

#endif  // OVS_BASELINES_GENETIC_H_
