#ifndef OVS_BASELINES_ESTIMATOR_H_
#define OVS_BASELINES_ESTIMATOR_H_

#include <functional>
#include <string>

#include "core/training_data.h"
#include "data/dataset.h"
#include "od/tod_tensor.h"
#include "util/mat.h"
#include "util/status.h"

namespace ovs::baselines {

/// Everything an estimator may consume. `train` holds the simulator-generated
/// (TOD, volume, speed) triples every learned method fits on; `oracle` is the
/// black-box TOD -> sensors simulator for the search methods (Genetic,
/// Gravity's k calibration). Estimators must not touch
/// dataset->ground_truth_tod — that is evaluation-only.
struct EstimatorContext {
  const data::Dataset* dataset = nullptr;
  const core::TrainingData* train = nullptr;
  std::function<core::TrainingSample(const od::TodTensor&)> oracle;
  /// Optional camera volume observations [dataset->camera_links.size() x T]
  /// (the sparse dynamic volume feed of paper Table II).
  const DMat* camera_volume = nullptr;
  uint64_t seed = 1;
};

/// Common interface of the paper's §V-F compared methods (and OVS itself via
/// an adapter): recover the TOD tensor from the observed city-wide speed.
class OdEstimator {
 public:
  virtual ~OdEstimator() = default;

  /// Method name as it appears in the paper's tables.
  virtual std::string name() const = 0;

  /// Recovers a TOD tensor [N_od x T] from `observed_speed` [M x T].
  /// Non-finite observation cells (dark sensors, dropped readings) are
  /// handled through the validity mask (see baselines/observation.h);
  /// an observation with no finite cell at all is an InvalidArgument
  /// error, and unrecoverable training divergence surfaces as Internal.
  [[nodiscard]] virtual StatusOr<od::TodTensor> Recover(
      const EstimatorContext& ctx, const DMat& observed_speed) = 0;
};

}  // namespace ovs::baselines

#endif  // OVS_BASELINES_ESTIMATOR_H_
