#include "sim/engine.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace ovs::sim {

namespace {

/// Block size for the light per-link ParallelFors (actuation scan, sensing,
/// interval flush). Small grids stay on the calling thread and only
/// city-scale nets fan out.
constexpr int64_t kLinkGrain = 256;

/// Block size for the phase-1 movement sweep, which does the Krauss physics
/// for every vehicle on the link and is an order of magnitude heavier per
/// link. The grain only affects scheduling, never results: phase-1 links are
/// mutually independent by construction.
constexpr int64_t kMoveGrain = 64;

}  // namespace

Engine::Engine(const RoadNet* net, EngineConfig config)
    : net_(net), config_(config), signals_(net, config.signal_plan) {
  CHECK(net != nullptr);
  CHECK_GT(config_.dt_s, 0.0);
  CHECK_GT(config_.interval_s, 0.0);
  CHECK_GT(config_.duration_s, 0.0);
  link_states_.resize(net_->num_links());
  lane_offset_.resize(net_->num_links());
  for (const Link& l : net_->links()) {
    link_states_[l.id].lanes.resize(l.num_lanes);
    link_states_[l.id].usable_lanes = l.num_lanes;
    lane_offset_[l.id] = total_lanes_;
    total_lanes_ += l.num_lanes;
  }
  speed_sum_.resize(net_->num_links(), 0.0);
  speed_obs_.resize(net_->num_links(), 0);
  if (config_.enable_signals && config_.use_actuated_signals) {
    actuated_ = std::make_unique<ActuatedSignalController>(net_, config_.actuated);
    approach_demand_.resize(net_->num_links(), false);
  }
}

bool Engine::MovementIsGreen(LinkId link, double now) const {
  if (!config_.enable_signals) return true;
  if (actuated_ != nullptr) return actuated_->IsGreen(link);
  return signals_.IsGreen(link, now);
}

void Engine::ApplyRoadWork(const std::vector<RoadWork>& works) {
  CHECK(!ran_) << "ApplyRoadWork must precede Run";
  for (const RoadWork& w : works) {
    CHECK_GE(w.link, 0);
    CHECK_LT(w.link, net_->num_links());
    CHECK_GT(w.speed_factor, 0.0);
    CHECK_LE(w.speed_factor, 1.0);
    LinkRuntime& state = link_states_[w.link];
    state.speed_factor = w.speed_factor;
    state.usable_lanes =
        std::max(1, net_->link(w.link).num_lanes - std::max(0, w.closed_lanes));
  }
}

void Engine::AddTrip(TripRequest trip) {
  CHECK(!ran_) << "AddTrip must precede Run";
  if (trip.route.empty()) {
    ++completed_count_;
    return;
  }
  // Route sanity: consecutive links must share an intersection.
  for (size_t i = 0; i + 1 < trip.route.size(); ++i) {
    CHECK_EQ(net_->link(trip.route[i]).to, net_->link(trip.route[i + 1]).from)
        << "disconnected route";
  }
  route_links_.insert(route_links_.end(), trip.route.begin(), trip.route.end());
  route_begin_.push_back(static_cast<int32_t>(route_links_.size()));
  route_idx_.push_back(0);
  lane_.push_back(0);
  pos_.push_back(0.0);
  speed_.push_back(0.0);
  depart_time_.push_back(trip.depart_time_s);
  spawn_time_.push_back(-1.0);
  active_.push_back(0);
  traces_.emplace_back();
}

double Engine::LinkDesiredSpeed(LinkId id) const {
  return net_->link(id).speed_limit_mps * link_states_[id].speed_factor;
}

double Engine::LaneRearSpace(LinkId link, int lane) const {
  const auto& q = link_states_[link].lanes[lane];
  if (q.empty()) return net_->link(link).length_m;
  return pos_[q.back()] - config_.car_following.vehicle_length;
}

double Engine::LaneRearSpacePrev(LinkId link, int lane) const {
  const auto& q = link_states_[link].lanes[lane];
  if (q.empty()) return net_->link(link).length_m;
  return prev_pos_[q.back()] - config_.car_following.vehicle_length;
}

int Engine::PickEntryLane(LinkId link, double entry_pos) const {
  const LinkRuntime& state = link_states_[link];
  int best = -1;
  double best_space = -1.0;
  for (int lane = 0; lane < state.usable_lanes; ++lane) {
    const double space = LaneRearSpace(link, lane);
    if (space - entry_pos >= config_.car_following.min_gap &&
        space > best_space) {
      best = lane;
      best_space = space;
    }
  }
  return best;
}

int Engine::PickEntryLanePrev(LinkId link, double entry_pos) const {
  const LinkRuntime& state = link_states_[link];
  int best = -1;
  double best_space = -1.0;
  for (int lane = 0; lane < state.usable_lanes; ++lane) {
    const double space = LaneRearSpacePrev(link, lane);
    if (space - entry_pos >= config_.car_following.min_gap &&
        space > best_space) {
      best = lane;
      best_space = space;
    }
  }
  return best;
}

bool Engine::TrySpawn(int vehicle_idx, double now) {
  const LinkId first = RouteLinkAt(vehicle_idx, 0);
  const int lane = PickEntryLane(first, 0.0);
  if (lane < 0) return false;
  active_[vehicle_idx] = 1;
  lane_[vehicle_idx] = lane;
  pos_[vehicle_idx] = 0.0;
  speed_[vehicle_idx] = 0.5 * LinkDesiredSpeed(first);
  spawn_time_[vehicle_idx] = now;
  route_idx_[vehicle_idx] = 0;
  link_states_[first].lanes[lane].push_back(vehicle_idx);
  ++active_count_;
  ++spawned_count_;
  if (config_.record_trajectories) {
    traces_[vehicle_idx].route.push_back(first);
    traces_[vehicle_idx].entry_times.push_back(now);
  }
  return true;
}

void Engine::SweepLinkPhase1(LinkId id, double now, LaneIntent* intents,
                            uint32_t* link_vehicle_steps) {
  const CarFollowingParams& cf = config_.car_following;
  const double dt = config_.dt_s;
  const Link& link = net_->link(id);
  LinkRuntime& state = link_states_[id];
  const double desired = LinkDesiredSpeed(id);
  uint32_t steps_here = 0;

  const int lanes = static_cast<int>(state.lanes.size());
  for (int lane = 0; lane < lanes; ++lane) {
    auto& lane_q = state.lanes[lane];
    // Front-to-back: followers see their leader's already-updated state,
    // which keeps platoons stable at dt = 1 s. The whole lane is owned by
    // this call, so that read is same-thread and deterministic.
    for (size_t i = 0; i < lane_q.size(); ++i) {
      const int vid = lane_q[i];
      ++steps_here;
      double gap;
      double leader_speed;
      bool green = false;
      LinkId next = -1;
      const bool last_link = route_idx_[vid] + 1 == RouteLength(vid);

      if (i > 0) {
        const int leader = lane_q[i - 1];
        gap = pos_[leader] - cf.vehicle_length - pos_[vid];
        leader_speed = speed_[leader];
      } else {
        // Front vehicle: look across the intersection. All cross-link reads
        // below go through the prev_* double buffer, so the outcome cannot
        // depend on how far other links have progressed within this step.
        const double dist_to_end = link.length_m - pos_[vid];
        if (last_link) {
          // Destination at the link end: drive freely off the network.
          gap = dist_to_end + 100.0;
          leader_speed = desired;
        } else {
          green = MovementIsGreen(id, now);
          next = RouteLinkAt(vid, route_idx_[vid] + 1);
          const int next_lane = green ? PickEntryLanePrev(next, 0.0) : -1;
          if (next_lane >= 0) {
            // Gap extends into the next link up to its rear space. This is
            // only a speed estimate: the authoritative entry decision is
            // re-made by phase 2 against committed state.
            gap = dist_to_end + LaneRearSpacePrev(next, next_lane) - cf.min_gap;
            const auto& next_q = link_states_[next].lanes[next_lane];
            leader_speed = next_q.empty() ? desired : prev_speed_[next_q.back()];
          } else {
            // Red light, or no room as of the previous step: pull up to the
            // stop line. If green, the vehicle still bids for a crossing
            // below — space may open this very step, and phase 2 must get
            // the chance to claim it before same-step spawning does.
            gap = dist_to_end;
            leader_speed = 0.0;
          }
        }
      }

      speed_[vid] = KraussNextSpeed(speed_[vid], desired, gap, leader_speed,
                                    dt, cf);
      const double new_pos = pos_[vid] + speed_[vid] * dt;

      if (new_pos >= link.length_m && i == 0) {
        if (last_link) {
          LaneIntent& intent = intents[lane_offset_[id] + lane];
          intent.kind = IntentKind::kComplete;
          intent.vehicle = vid;
        } else if (green) {
          LaneIntent& intent = intents[lane_offset_[id] + lane];
          intent.kind = IntentKind::kCross;
          intent.vehicle = vid;
          intent.next_link = next;
          intent.overshoot_m = new_pos - link.length_m;
        } else {
          speed_[vid] = 0.0;  // held at the red light
        }
      }
      pos_[vid] = std::min(new_pos, link.length_m);
    }
  }
  link_vehicle_steps[id] = steps_here;
}

void Engine::ApplyTransfersPhase2(const LaneIntent* intents, double now,
                                  int interval, SensorData* out) {
  const CarFollowingParams& cf = config_.car_following;
  // Canonical commit order — ascending link id, then lane index — is the
  // whole determinism story: phase 1 may run under any sharding, but the
  // queue mutations below always happen in this exact sequence.
  const int num_links = net_->num_links();
  for (LinkId id = 0; id < num_links; ++id) {
    LinkRuntime& state = link_states_[id];
    const int lanes = static_cast<int>(state.lanes.size());
    for (int lane = 0; lane < lanes; ++lane) {
      const LaneIntent& intent = intents[lane_offset_[id] + lane];
      if (intent.kind == IntentKind::kNone) continue;
      auto& lane_q = state.lanes[lane];
      const int vid = intent.vehicle;
      CHECK(!lane_q.empty());
      CHECK_EQ(lane_q.front(), vid);

      if (intent.kind == IntentKind::kComplete) {
        lane_q.pop_front();
        active_[vid] = 0;
        --active_count_;
        ++completed_count_;
        // Travel time counts from the *requested* departure: time spent
        // queued waiting to enter the network is part of the trip.
        total_travel_time_s_ += now - depart_time_[vid];
        if (config_.record_trajectories) traces_[vid].finish_time_s = now;
        continue;
      }

      // kCross: the entry lane is picked here, against committed state —
      // the phase-1 look was a one-step-stale estimate, and an earlier
      // transfer this phase may have consumed the space it saw (or opened
      // new space). Rejection is itself deterministic (same canonical order
      // every run), and the vehicle simply waits at the stop line.
      const int next_lane = PickEntryLane(intent.next_link, 0.0);
      if (next_lane < 0) {
        pos_[vid] = net_->link(id).length_m;
        speed_[vid] = 0.0;
        continue;
      }
      const double rear =
          LaneRearSpace(intent.next_link, next_lane) - cf.min_gap;
      lane_q.pop_front();
      ++route_idx_[vid];
      lane_[vid] = next_lane;
      pos_[vid] = std::clamp(intent.overshoot_m, 0.0, rear);
      link_states_[intent.next_link].lanes[next_lane].push_back(vid);
      out->volume.at(intent.next_link, interval) += 1.0;
      if (config_.record_trajectories) {
        traces_[vid].route.push_back(intent.next_link);
        traces_[vid].entry_times.push_back(now);
      }
    }
  }
}

void Engine::Step(int step, double now, int interval, SensorData* out) {
  // Actuated control: collect per-approach calls, then advance the
  // controller before movement decisions are made this step.
  if (actuated_ != nullptr) {
    // Per-link read-only scan with a disjoint per-link flag write — safe
    // and bitwise-deterministic for any thread count.
    ParallelFor(0, net_->num_links(), kLinkGrain, [&](int64_t lo, int64_t hi) {
      for (int64_t id = lo; id < hi; ++id) {
        const Link& link = net_->link(static_cast<LinkId>(id));
        char demand = 0;
        for (const auto& lane_q : link_states_[id].lanes) {
          if (lane_q.empty()) continue;
          if (link.length_m - pos_[lane_q.front()] <=
              config_.actuation_distance_m) {
            demand = 1;
            break;
          }
        }
        approach_demand_[id] = demand;
      }
    });
    actuated_->Update(now, approach_demand_);
  }

  // Publish the previous step's committed kinematics into the read buffer
  // phase 1 uses for cross-link looks. Vector assignment reuses capacity,
  // so this is a flat memcpy per step.
  prev_pos_ = pos_;
  prev_speed_ = speed_;

  step_arena_.Reset();
  LaneIntent* intents = step_arena_.NewArray<LaneIntent>(total_lanes_);
  uint32_t* link_vehicle_steps =
      step_arena_.NewArray<uint32_t>(net_->num_links());

  // Phase 1: per-link kinematics + boundary intents. Links are mutually
  // independent (cross-link reads hit the prev_* buffer, writes touch only
  // the link's own vehicles and intent slots), so any sharding produces the
  // same result. force_serial_sweep runs the identical kernel on the
  // calling thread — the differential reference the determinism tests
  // compare against.
  const auto sweep = [&](int64_t lo, int64_t hi) {
    for (int64_t id = lo; id < hi; ++id) {
      SweepLinkPhase1(static_cast<LinkId>(id), now, intents,
                      link_vehicle_steps);
    }
  };
  if (config_.force_serial_sweep) {
    sweep(0, net_->num_links());
  } else {
    ParallelFor(0, net_->num_links(), kMoveGrain, sweep);
  }
  for (int id = 0; id < net_->num_links(); ++id) {
    total_vehicle_steps_ += link_vehicle_steps[id];
  }

  // Phase 2: serial canonical-order commit of completions and transfers.
  ApplyTransfersPhase2(intents, now, interval, out);

  // Spawn pending demand whose departure time has arrived. FIFO is enforced
  // per entry link: a full link defers its own queue without starving other
  // origins.
  if (!pending_.empty() && depart_time_[pending_.front()] <= now) {
    char* blocked = step_arena_.NewArray<char>(net_->num_links());
    spawn_deferred_.clear();
    while (!pending_.empty()) {
      const int vid = pending_.front();
      if (depart_time_[vid] > now) break;
      pending_.pop_front();
      const LinkId entry = RouteLinkAt(vid, 0);
      if (blocked[entry] || !TrySpawn(vid, now)) {
        blocked[entry] = 1;
        spawn_deferred_.push_back(vid);
        continue;
      }
      out->volume.at(entry, interval) += 1.0;
    }
    // Deferred vehicles go back to the front, in order, before untouched ones.
    for (auto it = spawn_deferred_.rbegin(); it != spawn_deferred_.rend();
         ++it) {
      pending_.push_front(*it);
    }
  }

  // Speed sensing: every active vehicle contributes its current speed to its
  // current link's accumulator. Each link's accumulators are written only by
  // the thread owning its block, and the per-link summation order (lane,
  // then queue position) is independent of the blocking, so the sums are
  // bitwise-identical for any thread count.
  ParallelFor(0, net_->num_links(), kLinkGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t id = lo; id < hi; ++id) {
      for (const auto& lane_q : link_states_[id].lanes) {
        for (int vid : lane_q) {
          speed_sum_[id] += speed_[vid];
          speed_obs_[id] += 1;
        }
      }
    }
  });

  OVS_COUNTER_INC("sim.steps");
  if (step_observer_) step_observer_(*this, step);
}

SensorData Engine::Run() {
  CHECK(!ran_) << "Engine::Run is single-shot";
  ran_ = true;
  OVS_TRACE_SCOPE("sim.run");
  OVS_COUNTER_INC("sim.runs");

  const int intervals = config_.NumIntervals();
  SensorData out;
  out.volume = DMat(net_->num_links(), intervals);
  out.speed = DMat(net_->num_links(), intervals);

  // Order demand by departure time. stable_sort: equal departure times keep
  // AddTrip order, independent of the sort implementation.
  std::vector<int> order(pos_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
    return depart_time_[a] < depart_time_[b];
  });
  pending_.assign(order.begin(), order.end());

  const int steps = static_cast<int>(config_.duration_s / config_.dt_s + 0.5);
  int current_interval = 0;
  for (int step = 0; step < steps; ++step) {
    const double now = step * config_.dt_s;
    const int interval =
        std::min(intervals - 1, static_cast<int>(now / config_.interval_s));
    if (interval != current_interval) {
      // Flush the finished interval's speed accumulators (disjoint per-link
      // writes; deterministic for any thread count).
      OVS_TRACE_SCOPE("sim.interval_flush");
      OVS_COUNTER_INC("sim.interval_flushes");
      // Sampled at interval cadence, not per step: a full bench run emits
      // millions of steps, which would dominate the trace file.
      OVS_TRACE_COUNTER("sim.active_vehicles",
                        static_cast<double>(active_count_));
      ParallelFor(0, net_->num_links(), kLinkGrain,
                  [&](int64_t lo, int64_t hi) {
                    for (int64_t l = lo; l < hi; ++l) {
                      out.speed.at(static_cast<int>(l), current_interval) =
                          speed_obs_[l] > 0
                              ? speed_sum_[l] / speed_obs_[l]
                              : LinkDesiredSpeed(static_cast<LinkId>(l));
                      speed_sum_[l] = 0.0;
                      speed_obs_[l] = 0;
                    }
                  });
      current_interval = interval;
    }
    Step(step, now, interval, &out);
  }
  // Flush the final interval.
  for (int l = 0; l < net_->num_links(); ++l) {
    out.speed.at(l, current_interval) =
        speed_obs_[l] > 0 ? speed_sum_[l] / speed_obs_[l] : LinkDesiredSpeed(l);
  }

  // Sensor degradation happens after the physics: the simulated city is
  // intact, only its measurements are corrupted.
  if (config_.sensor_faults.any()) {
    ApplySensorFaults(config_.sensor_faults, &out.speed, &out.volume);
    OVS_COUNTER_ADD("sim.sensor_fault_cells",
                    static_cast<uint64_t>(CountInvalidCells(out.speed)));
  }

  OVS_COUNTER_ADD("sim.vehicle_steps", total_vehicle_steps_);
  OVS_COUNTER_ADD("sim.completed_trips",
                  static_cast<uint64_t>(completed_count_));

  out.spawned_trips = spawned_count_;
  out.completed_trips = completed_count_;
  out.unspawned_trips = static_cast<int>(pending_.size());
  out.mean_travel_time_s =
      completed_count_ > 0 ? total_travel_time_s_ / completed_count_ : 0.0;
  if (config_.record_trajectories) {
    out.trajectories.reserve(traces_.size());
    for (size_t v = 0; v < traces_.size(); ++v) {
      traces_[v].depart_time_s = depart_time_[v];
      out.trajectories.push_back(std::move(traces_[v]));
    }
  }
  return out;
}

SensorData Simulate(const RoadNet& net, const EngineConfig& config,
                    const std::vector<TripRequest>& trips,
                    const std::vector<RoadWork>& works) {
  Engine engine(&net, config);
  engine.ApplyRoadWork(works);
  for (const TripRequest& trip : trips) engine.AddTrip(trip);
  return engine.Run();
}

}  // namespace ovs::sim
