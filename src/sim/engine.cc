#include "sim/engine.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace ovs::sim {

namespace {

/// Block size for the per-link ParallelFors. Per-link work is light, so
/// small grids stay on the calling thread and only city-scale nets fan out.
constexpr int64_t kLinkGrain = 256;

}  // namespace

Engine::Engine(const RoadNet* net, EngineConfig config)
    : net_(net), config_(config), signals_(net, config.signal_plan) {
  CHECK(net != nullptr);
  CHECK_GT(config_.dt_s, 0.0);
  CHECK_GT(config_.interval_s, 0.0);
  CHECK_GT(config_.duration_s, 0.0);
  link_states_.resize(net_->num_links());
  for (const Link& l : net_->links()) {
    link_states_[l.id].lanes.resize(l.num_lanes);
    link_states_[l.id].usable_lanes = l.num_lanes;
  }
  speed_sum_.resize(net_->num_links(), 0.0);
  speed_obs_.resize(net_->num_links(), 0);
  if (config_.enable_signals && config_.use_actuated_signals) {
    actuated_ = std::make_unique<ActuatedSignalController>(net_, config_.actuated);
    approach_demand_.resize(net_->num_links(), false);
  }
}

bool Engine::MovementIsGreen(LinkId link, double now) const {
  if (!config_.enable_signals) return true;
  if (actuated_ != nullptr) return actuated_->IsGreen(link);
  return signals_.IsGreen(link, now);
}

void Engine::ApplyRoadWork(const std::vector<RoadWork>& works) {
  CHECK(!ran_) << "ApplyRoadWork must precede Run";
  for (const RoadWork& w : works) {
    CHECK_GE(w.link, 0);
    CHECK_LT(w.link, net_->num_links());
    CHECK_GT(w.speed_factor, 0.0);
    CHECK_LE(w.speed_factor, 1.0);
    LinkRuntime& state = link_states_[w.link];
    state.speed_factor = w.speed_factor;
    state.usable_lanes =
        std::max(1, net_->link(w.link).num_lanes - std::max(0, w.closed_lanes));
  }
}

void Engine::AddTrip(TripRequest trip) {
  CHECK(!ran_) << "AddTrip must precede Run";
  if (trip.route.empty()) {
    ++completed_count_;
    return;
  }
  // Route sanity: consecutive links must share an intersection.
  for (size_t i = 0; i + 1 < trip.route.size(); ++i) {
    CHECK_EQ(net_->link(trip.route[i]).to, net_->link(trip.route[i + 1]).from)
        << "disconnected route";
  }
  VehicleState v;
  v.route = std::move(trip.route);
  v.depart_time_s = trip.depart_time_s;
  vehicles_.push_back(std::move(v));
}

double Engine::LinkDesiredSpeed(LinkId id) const {
  return net_->link(id).speed_limit_mps * link_states_[id].speed_factor;
}

double Engine::LaneRearSpace(LinkId link, int lane) const {
  const auto& q = link_states_[link].lanes[lane];
  if (q.empty()) return net_->link(link).length_m;
  const VehicleState& last = vehicles_[q.back()];
  return last.pos_m - config_.car_following.vehicle_length;
}

int Engine::PickEntryLane(LinkId link, double entry_pos) const {
  const LinkRuntime& state = link_states_[link];
  int best = -1;
  double best_space = -1.0;
  for (int lane = 0; lane < state.usable_lanes; ++lane) {
    const double space = LaneRearSpace(link, lane);
    if (space - entry_pos >= config_.car_following.min_gap &&
        space > best_space) {
      best = lane;
      best_space = space;
    }
  }
  return best;
}

bool Engine::TrySpawn(int vehicle_idx, double now) {
  VehicleState& v = vehicles_[vehicle_idx];
  const LinkId first = v.route[0];
  const int lane = PickEntryLane(first, 0.0);
  if (lane < 0) return false;
  v.active = true;
  v.lane = lane;
  v.pos_m = 0.0;
  v.speed = 0.5 * LinkDesiredSpeed(first);
  v.spawn_time_s = now;
  v.route_idx = 0;
  link_states_[first].lanes[lane].push_back(vehicle_idx);
  ++active_count_;
  if (config_.record_trajectories) {
    v.trace.route.push_back(first);
    v.trace.entry_times.push_back(now);
  }
  return true;
}

void Engine::Step(int step, double now, int interval, SensorData* out) {
  const CarFollowingParams& cf = config_.car_following;
  const double dt = config_.dt_s;

  // Actuated control: collect per-approach calls, then advance the
  // controller before movement decisions are made this step.
  if (actuated_ != nullptr) {
    // Per-link read-only scan with a disjoint per-link flag write — safe
    // and bitwise-deterministic for any thread count.
    ParallelFor(0, net_->num_links(), kLinkGrain, [&](int64_t lo, int64_t hi) {
      for (int64_t id = lo; id < hi; ++id) {
        const Link& link = net_->link(static_cast<LinkId>(id));
        char demand = 0;
        for (const auto& lane_q : link_states_[id].lanes) {
          if (lane_q.empty()) continue;
          const VehicleState& front = vehicles_[lane_q.front()];
          if (link.length_m - front.pos_m <= config_.actuation_distance_m) {
            demand = 1;
            break;
          }
        }
        approach_demand_[id] = demand;
      }
    });
    actuated_->Update(now, approach_demand_);
  }

  // Sequential front-to-back update per lane. Followers see their leader's
  // already-updated position, which keeps platoons stable at dt = 1 s.
  // This sweep stays serial on purpose: crossings couple links (a front
  // vehicle reads the *current* rear space of its next link and pushes
  // itself into that link's lane queue), so the outcome depends on link
  // visit order. Parallelizing it would either race on the lane queues or
  // change results with the thread count, breaking the bitwise-determinism
  // guarantee the parallel layer makes (see DESIGN.md).
  for (const Link& link : net_->links()) {
    LinkRuntime& state = link_states_[link.id];
    const double desired = LinkDesiredSpeed(link.id);
    for (auto& lane_q : state.lanes) {
      for (size_t i = 0; i < lane_q.size();) {
        const int vid = lane_q[i];
        VehicleState& v = vehicles_[vid];
        if (v.last_step == step) {
          // Already updated this step (crossed in from an earlier link).
          ++i;
          continue;
        }
        v.last_step = step;
        ++total_vehicle_steps_;
        double gap;
        double leader_speed;
        bool can_cross = false;
        int next_lane = -1;

        if (i > 0) {
          const VehicleState& leader = vehicles_[lane_q[i - 1]];
          gap = leader.pos_m - cf.vehicle_length - v.pos_m;
          leader_speed = leader.speed;
        } else {
          // Front vehicle: look across the intersection.
          const double dist_to_end = link.length_m - v.pos_m;
          const bool last_link =
              v.route_idx + 1 == static_cast<int>(v.route.size());
          if (last_link) {
            // Destination at the link end: drive freely off the network.
            gap = dist_to_end + 100.0;
            leader_speed = desired;
            can_cross = true;
          } else {
            const bool green = MovementIsGreen(link.id, now);
            const LinkId next = v.route[v.route_idx + 1];
            next_lane = green ? PickEntryLane(next, 0.0) : -1;
            if (green && next_lane >= 0) {
              can_cross = true;
              // Gap extends into the next link up to its rear space.
              gap = dist_to_end + LaneRearSpace(next, next_lane) - cf.min_gap;
              const auto& next_q = link_states_[next].lanes[next_lane];
              leader_speed =
                  next_q.empty() ? desired : vehicles_[next_q.back()].speed;
            } else {
              // Red light or blocked: stop at the stop line.
              gap = dist_to_end;
              leader_speed = 0.0;
            }
          }
        }

        v.speed = KraussNextSpeed(v.speed, desired, gap, leader_speed, dt, cf);
        double new_pos = v.pos_m + v.speed * dt;

        if (new_pos >= link.length_m && i == 0) {
          const bool last_link =
              v.route_idx + 1 == static_cast<int>(v.route.size());
          if (last_link) {
            // Trip complete.
            v.active = false;
            --active_count_;
            ++completed_count_;
            // Travel time counts from the *requested* departure: time spent
            // queued waiting to enter the network is part of the trip.
            total_travel_time_s_ += now - v.depart_time_s;
            if (config_.record_trajectories) v.trace.finish_time_s = now;
            lane_q.pop_front();
            continue;  // i stays 0, next vehicle becomes front
          }
          if (can_cross) {
            const LinkId next = v.route[v.route_idx + 1];
            double overshoot = new_pos - link.length_m;
            const double rear =
                LaneRearSpace(next, next_lane) - cf.min_gap;
            overshoot = std::clamp(overshoot, 0.0, std::max(0.0, rear));
            lane_q.pop_front();
            ++v.route_idx;
            v.lane = next_lane;
            v.pos_m = overshoot;
            link_states_[next].lanes[next_lane].push_back(vid);
            out->volume.at(next, interval) += 1.0;
            if (config_.record_trajectories) {
              v.trace.route.push_back(next);
              v.trace.entry_times.push_back(now);
            }
            continue;  // front slot re-evaluated for the next vehicle
          }
          new_pos = link.length_m;  // hold at the stop line
          v.speed = 0.0;
        }

        v.pos_m = std::min(new_pos, link.length_m);
        ++i;
      }
    }
  }

  // Spawn pending demand whose departure time has arrived. FIFO is enforced
  // per entry link: a full link defers its own queue without starving other
  // origins.
  if (!pending_.empty() && vehicles_[pending_.front()].depart_time_s <= now) {
    std::vector<char> blocked(net_->num_links(), 0);
    std::deque<int> still_pending;
    while (!pending_.empty()) {
      const int vid = pending_.front();
      if (vehicles_[vid].depart_time_s > now) break;
      pending_.pop_front();
      const LinkId entry = vehicles_[vid].route[0];
      if (blocked[entry] || !TrySpawn(vid, now)) {
        blocked[entry] = 1;
        still_pending.push_back(vid);
        continue;
      }
      vehicles_[vid].last_step = step;
      out->volume.at(entry, interval) += 1.0;
      ++out->spawned_trips;
    }
    // Deferred vehicles go back to the front, in order, before untouched ones.
    for (auto it = still_pending.rbegin(); it != still_pending.rend(); ++it) {
      pending_.push_front(*it);
    }
  }

  // Speed sensing: every active vehicle contributes its current speed to its
  // current link's accumulator. Each link's accumulators are written only by
  // the thread owning its block, and the per-link summation order (lane,
  // then queue position) is independent of the blocking, so the sums are
  // bitwise-identical for any thread count.
  ParallelFor(0, net_->num_links(), kLinkGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t id = lo; id < hi; ++id) {
      for (const auto& lane_q : link_states_[id].lanes) {
        for (int vid : lane_q) {
          speed_sum_[id] += vehicles_[vid].speed;
          speed_obs_[id] += 1;
        }
      }
    }
  });

  OVS_COUNTER_INC("sim.steps");
}

SensorData Engine::Run() {
  CHECK(!ran_) << "Engine::Run is single-shot";
  ran_ = true;
  OVS_TRACE_SCOPE("sim.run");
  OVS_COUNTER_INC("sim.runs");

  const int intervals = config_.NumIntervals();
  SensorData out;
  out.volume = DMat(net_->num_links(), intervals);
  out.speed = DMat(net_->num_links(), intervals);

  // Order demand by departure time.
  std::vector<int> order(vehicles_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
    return vehicles_[a].depart_time_s < vehicles_[b].depart_time_s;
  });
  pending_.assign(order.begin(), order.end());

  const int steps = static_cast<int>(config_.duration_s / config_.dt_s + 0.5);
  int current_interval = 0;
  for (int step = 0; step < steps; ++step) {
    const double now = step * config_.dt_s;
    const int interval =
        std::min(intervals - 1, static_cast<int>(now / config_.interval_s));
    if (interval != current_interval) {
      // Flush the finished interval's speed accumulators (disjoint per-link
      // writes; deterministic for any thread count).
      OVS_TRACE_SCOPE("sim.interval_flush");
      OVS_COUNTER_INC("sim.interval_flushes");
      // Sampled at interval cadence, not per step: a full bench run emits
      // millions of steps, which would dominate the trace file.
      OVS_TRACE_COUNTER("sim.active_vehicles",
                        static_cast<double>(active_count_));
      ParallelFor(0, net_->num_links(), kLinkGrain,
                  [&](int64_t lo, int64_t hi) {
                    for (int64_t l = lo; l < hi; ++l) {
                      out.speed.at(static_cast<int>(l), current_interval) =
                          speed_obs_[l] > 0
                              ? speed_sum_[l] / speed_obs_[l]
                              : LinkDesiredSpeed(static_cast<LinkId>(l));
                      speed_sum_[l] = 0.0;
                      speed_obs_[l] = 0;
                    }
                  });
      current_interval = interval;
    }
    Step(step, now, interval, &out);
  }
  // Flush the final interval.
  for (int l = 0; l < net_->num_links(); ++l) {
    out.speed.at(l, current_interval) =
        speed_obs_[l] > 0 ? speed_sum_[l] / speed_obs_[l] : LinkDesiredSpeed(l);
  }

  // Sensor degradation happens after the physics: the simulated city is
  // intact, only its measurements are corrupted.
  if (config_.sensor_faults.any()) {
    ApplySensorFaults(config_.sensor_faults, &out.speed, &out.volume);
    OVS_COUNTER_ADD("sim.sensor_fault_cells",
                    static_cast<uint64_t>(CountInvalidCells(out.speed)));
  }

  OVS_COUNTER_ADD("sim.vehicle_steps", total_vehicle_steps_);
  OVS_COUNTER_ADD("sim.completed_trips",
                  static_cast<uint64_t>(completed_count_));

  out.completed_trips = completed_count_;
  out.unspawned_trips = static_cast<int>(pending_.size());
  out.mean_travel_time_s =
      completed_count_ > 0 ? total_travel_time_s_ / completed_count_ : 0.0;
  if (config_.record_trajectories) {
    out.trajectories.reserve(vehicles_.size());
    for (VehicleState& v : vehicles_) {
      v.trace.depart_time_s = v.depart_time_s;
      out.trajectories.push_back(std::move(v.trace));
    }
  }
  return out;
}

SensorData Simulate(const RoadNet& net, const EngineConfig& config,
                    const std::vector<TripRequest>& trips,
                    const std::vector<RoadWork>& works) {
  Engine engine(&net, config);
  engine.ApplyRoadWork(works);
  for (const TripRequest& trip : trips) engine.AddTrip(trip);
  return engine.Run();
}

}  // namespace ovs::sim
