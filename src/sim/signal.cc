#include "sim/signal.h"

#include <cmath>

namespace ovs::sim {

SignalController::SignalController(const RoadNet* net, SignalPlan plan)
    : net_(net), plan_(plan) {
  CHECK(net != nullptr);
  CHECK_GT(plan_.green_ns_s, 0.0);
  CHECK_GT(plan_.green_ew_s, 0.0);
  CHECK_GE(plan_.all_red_s, 0.0);
  link_is_ns_.resize(net_->num_links());
  for (const Link& l : net_->links()) {
    link_is_ns_[l.id] = net_->LinkIsNorthSouth(l.id);
  }
}

double SignalController::Offset(IntersectionId id) const {
  // Deterministic stagger: spread offsets over the cycle using a cheap hash.
  const double cycle = plan_.CycleLength();
  const unsigned h = static_cast<unsigned>(id) * 2654435761u;
  return (h % 1000u) / 1000.0 * cycle;
}

bool SignalController::IsGreen(LinkId incoming_link, double time_s) const {
  const Link& l = net_->link(incoming_link);
  const Intersection& node = net_->intersection(l.to);
  if (!node.signalized) return true;
  // Intersections with a single incoming approach never conflict.
  if (node.incoming.size() <= 1) return true;

  const double cycle = plan_.CycleLength();
  double t = std::fmod(time_s + Offset(node.id), cycle);
  if (t < 0.0) t += cycle;

  // Cycle layout: [green NS][all red][green EW][all red]
  if (t < plan_.green_ns_s) return link_is_ns_[incoming_link];
  t -= plan_.green_ns_s;
  if (t < plan_.all_red_s) return false;
  t -= plan_.all_red_s;
  if (t < plan_.green_ew_s) return !link_is_ns_[incoming_link];
  return false;
}

ActuatedSignalController::ActuatedSignalController(const RoadNet* net,
                                                   Params params)
    : net_(net), params_(params) {
  CHECK(net != nullptr);
  CHECK_GT(params_.min_green_s, 0.0);
  CHECK_GE(params_.max_green_s, params_.min_green_s);
  CHECK_GE(params_.all_red_s, 0.0);
  states_.resize(net_->num_intersections());
  link_is_ns_.resize(net_->num_links());
  for (const Link& l : net_->links()) {
    link_is_ns_[l.id] = net_->LinkIsNorthSouth(l.id);
  }
}

void ActuatedSignalController::Update(double time_s,
                                      const std::vector<char>& approach_demand) {
  CHECK_EQ(static_cast<int>(approach_demand.size()), net_->num_links());
  for (const Intersection& node : net_->intersections()) {
    if (!node.signalized || node.incoming.size() <= 1) continue;
    ActuatedState& state = states_[node.id];

    // Finish an all-red clearance by switching direction.
    if (state.in_all_red) {
      if (time_s - state.all_red_start_s >= params_.all_red_s) {
        state.in_all_red = false;
        state.ns_green = !state.ns_green;
        state.phase_start_s = time_s;
      }
      continue;
    }

    bool served_demand = false;
    bool cross_demand = false;
    for (LinkId l : node.incoming) {
      if (!approach_demand[l]) continue;
      if (link_is_ns_[l] == state.ns_green) {
        served_demand = true;
      } else {
        cross_demand = true;
      }
    }

    const double elapsed = time_s - state.phase_start_s;
    const bool past_min = elapsed >= params_.min_green_s;
    const bool past_max = elapsed >= params_.max_green_s;
    if ((past_min && cross_demand && !served_demand) ||
        (past_max && cross_demand)) {
      state.in_all_red = true;
      state.all_red_start_s = time_s;
    }
  }
}

bool ActuatedSignalController::IsGreen(LinkId incoming_link) const {
  const Link& l = net_->link(incoming_link);
  const Intersection& node = net_->intersection(l.to);
  if (!node.signalized || node.incoming.size() <= 1) return true;
  const ActuatedState& state = states_[node.id];
  if (state.in_all_red) return false;
  return link_is_ns_[incoming_link] == state.ns_green;
}

}  // namespace ovs::sim
