#ifndef OVS_SIM_CAR_FOLLOWING_H_
#define OVS_SIM_CAR_FOLLOWING_H_

namespace ovs::sim {

/// Parameters of the Krauss (1998) car-following model used by SUMO and
/// CityFlow-style microscopic simulators. Units: meters, seconds.
struct CarFollowingParams {
  double max_accel = 2.0;      ///< comfortable acceleration, m/s^2
  double max_decel = 4.5;      ///< maximum braking, m/s^2
  /// Driver reaction time tau, s. 1.6 s puts the Krauss saturation flow
  /// near the real-world ~1800 veh/h/lane; the model's default 1 s would
  /// double that and leave link speed insensitive to volume until jam.
  double reaction_time = 1.6;
  double min_gap = 3.0;        ///< standstill gap to the leader, m
  double vehicle_length = 5.0; ///< occupied road length per vehicle, m
};

/// The Krauss safe speed: the highest speed at which the follower can still
/// avoid a collision if the leader brakes at max_decel, given the current
/// `gap` (bumper-to-bumper) and `leader_speed`. For gap <= 0 returns 0.
double KraussSafeSpeed(double gap, double leader_speed,
                       const CarFollowingParams& params);

/// One car-following update: returns the follower's next speed given its
/// current speed, the desired (link limit) speed, the gap to the leader and
/// the leader speed, over a step of `dt` seconds. The result is clamped to
/// [0, desired_speed] and accelerates/brakes within the model limits.
double KraussNextSpeed(double current_speed, double desired_speed, double gap,
                       double leader_speed, double dt,
                       const CarFollowingParams& params);

/// Convenience for a free leader (nothing ahead on the link and green light):
/// accelerate toward the desired speed.
double FreeFlowNextSpeed(double current_speed, double desired_speed, double dt,
                         const CarFollowingParams& params);

}  // namespace ovs::sim

#endif  // OVS_SIM_CAR_FOLLOWING_H_
