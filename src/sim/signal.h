#ifndef OVS_SIM_SIGNAL_H_
#define OVS_SIM_SIGNAL_H_

#include <vector>

#include "sim/roadnet.h"

namespace ovs::sim {

/// Fixed-cycle two-phase signal plan shared by all signalized intersections:
/// phase 0 gives green to north-south approaches, phase 1 to east-west, with
/// an all-red clearance between phases. Per-intersection offsets stagger the
/// cycles so a grid does not pulse in lockstep.
struct SignalPlan {
  double green_ns_s = 30.0;
  double green_ew_s = 30.0;
  double all_red_s = 2.0;

  double CycleLength() const { return green_ns_s + green_ew_s + 2.0 * all_red_s; }
};

/// State of one intersection under vehicle-actuated control.
struct ActuatedState {
  bool ns_green = true;      ///< current serving direction
  double phase_start_s = 0.0;
  bool in_all_red = false;
  double all_red_start_s = 0.0;
};

/// Vehicle-actuated signal controller: each intersection serves a direction
/// for at least `min_green_s`; beyond that it switches as soon as the served
/// approaches are empty (or `max_green_s` elapses) while the cross
/// direction has demand. The engine feeds it per-approach queue presence
/// every step. Reduces empty-green waste relative to the fixed plan.
class ActuatedSignalController {
 public:
  struct Params {
    double min_green_s = 8.0;
    double max_green_s = 45.0;
    double all_red_s = 2.0;
  };

  ActuatedSignalController(const RoadNet* net, Params params);

  /// Advances controller state to `time_s` given per-link "has a vehicle
  /// within actuation distance of the stop line" flags (nonzero = demand;
  /// char instead of vector<bool> so the engine can fill the flags from
  /// parallel per-link scans without bit-packing races). Call once per
  /// step, with non-decreasing time.
  void Update(double time_s, const std::vector<char>& approach_demand);

  /// True if the movement out of `incoming_link` is currently green.
  bool IsGreen(LinkId incoming_link) const;

  const Params& params() const { return params_; }

 private:
  const RoadNet* net_;
  Params params_;
  std::vector<ActuatedState> states_;  // per intersection
  std::vector<bool> link_is_ns_;
};

/// Answers "may a vehicle leave link L at time t?" for every intersection.
/// Unsignalized intersections are always permissive.
class SignalController {
 public:
  SignalController(const RoadNet* net, SignalPlan plan);

  /// True if the movement out of `incoming_link` is green at `time_s`.
  bool IsGreen(LinkId incoming_link, double time_s) const;

  /// Per-intersection cycle offset in seconds (derived from the id so the
  /// pattern is deterministic but staggered).
  double Offset(IntersectionId id) const;

  const SignalPlan& plan() const { return plan_; }

 private:
  const RoadNet* net_;
  SignalPlan plan_;
  std::vector<bool> link_is_ns_;  // cached LinkIsNorthSouth per link
};

}  // namespace ovs::sim

#endif  // OVS_SIM_SIGNAL_H_
