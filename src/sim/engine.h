#ifndef OVS_SIM_ENGINE_H_
#define OVS_SIM_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "sim/car_following.h"
#include "sim/roadnet.h"
#include "sim/router.h"
#include "sim/sensor_faults.h"
#include "sim/signal.h"
#include "util/arena.h"
#include "util/mat.h"

namespace ovs::sim {

/// Engine-wide configuration. Defaults match the paper's experiment setup:
/// 2-hour horizon split into 10-minute sensor intervals.
struct EngineConfig {
  double dt_s = 1.0;            ///< integration step
  double interval_s = 600.0;    ///< sensor aggregation interval (10 min)
  double duration_s = 7200.0;   ///< total simulated horizon (2 h)
  CarFollowingParams car_following;
  SignalPlan signal_plan;
  bool enable_signals = true;
  /// Replace the fixed two-phase plan with vehicle-actuated control
  /// (ActuatedSignalController). Only meaningful when enable_signals.
  bool use_actuated_signals = false;
  ActuatedSignalController::Params actuated;
  /// Distance from the stop line within which a vehicle places an actuation
  /// call on its approach.
  double actuation_distance_m = 60.0;
  /// Record per-vehicle traces (link entry timestamps) into
  /// SensorData::trajectories — the raw material for GPS-trajectory style
  /// data pipelines. Off by default (costs memory on big runs).
  bool record_trajectories = false;
  /// Degrades the sensor outputs before Run() returns them (dropout,
  /// blackouts, stuck sensors, noise, spikes, NaN poisoning — see
  /// sim/sensor_faults.h). All-off by default; deterministic given the
  /// fault seed regardless of thread count.
  SensorFaultConfig sensor_faults;
  /// Runs the phase-1 movement sweep serially in canonical link order
  /// instead of sharding it over the thread pool. This is the differential
  /// reference for the determinism contract: the parallel sweep must be
  /// bitwise-identical to this mode at every thread count
  /// (tests/sim_determinism_test.cc and the CI sim-parity job enforce it).
  bool force_serial_sweep = false;

  int NumIntervals() const {
    // At least one sensor bucket even when the horizon is shorter than the
    // aggregation interval.
    return std::max(1, static_cast<int>(duration_s / interval_s + 0.5));
  }
};

/// A per-link perturbation used for the RQ3 road-work experiments: scales the
/// attainable speed and closes lanes on the affected link.
struct RoadWork {
  LinkId link = -1;
  double speed_factor = 1.0;  ///< multiplies the link speed limit, in (0, 1]
  int closed_lanes = 0;       ///< lanes taken out of service (>= 0)
};

/// A demand event: one vehicle departing at `depart_time_s` along `route`.
struct TripRequest {
  double depart_time_s = 0.0;
  Route route;
};

/// One vehicle's realized trip: the links it traversed and when it entered
/// each (plus departure/finish). This is what a GPS logger on the vehicle
/// would capture, up to map-matching.
struct VehicleTrace {
  Route route;                       ///< links actually traversed
  std::vector<double> entry_times;   ///< entry timestamp per traversed link
  double depart_time_s = 0.0;        ///< requested departure
  double finish_time_s = -1.0;       ///< arrival; -1 if still en route at end
};

/// What the city's "sensors" observed: per-link per-interval volume (vehicles
/// entering the link) and mean speed (m/s; free-flow when no vehicle was
/// observed). This pair is the paper's (volume tensor, speed tensor).
struct SensorData {
  DMat volume;  ///< [num_links x num_intervals]
  DMat speed;   ///< [num_links x num_intervals], m/s

  int spawned_trips = 0;
  int completed_trips = 0;
  int unspawned_trips = 0;       ///< demand that never found entry space
  double mean_travel_time_s = 0.0;

  /// Per-vehicle traces (only when EngineConfig::record_trajectories).
  /// Unspawned vehicles get an empty route.
  std::vector<VehicleTrace> trajectories;
};

/// Microscopic traffic simulator: Krauss car-following on multi-lane links,
/// two-phase fixed signals, queue spillback across links, and per-interval
/// link sensors. Deterministic: same network + trips => same sensor output,
/// bitwise, at any thread count.
///
/// Vehicle state lives in structure-of-arrays form and each step runs a
/// two-phase sweep: phase 1 computes kinematics and boundary intents per
/// link in parallel (cross-link reads go through a double buffer of the
/// previous step's state), phase 2 commits completions and link transfers
/// serially in canonical link-id order. See DESIGN.md "Parallel simulator".
///
/// Usage: construct, optionally ApplyRoadWork, AddTrip for every vehicle,
/// then Run() once. The engine is single-shot; build a new one per scenario.
class Engine {
 public:
  Engine(const RoadNet* net, EngineConfig config);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Applies road-work perturbations. Must precede Run().
  void ApplyRoadWork(const std::vector<RoadWork>& works);

  /// Queues one vehicle. Must precede Run(). Trips with empty routes are
  /// counted as completed immediately.
  void AddTrip(TripRequest trip);

  /// Runs the full horizon and returns the sensor observations.
  SensorData Run();

  /// Number of vehicles currently on the network (valid after Run for
  /// inspection of residual congestion).
  int active_vehicles() const { return active_count_; }

  const EngineConfig& config() const { return config_; }

  // --- Introspection for the invariant/property tests -------------------
  // These expose committed (post-step) state only; none of them mutate.

  /// Total vehicles added via AddTrip with a non-empty route.
  int num_vehicles() const { return static_cast<int>(pos_.size()); }
  /// Vehicles that have entered the network so far.
  int spawned_trips() const { return spawned_count_; }
  /// Trips finished so far (includes empty-route trips completed at AddTrip).
  int completed_trips() const { return completed_count_; }
  int num_lanes(LinkId link) const {
    return static_cast<int>(link_states_[link].lanes.size());
  }
  /// Lane queue, front (largest pos) first.
  const std::deque<int>& lane_queue(LinkId link, int lane) const {
    return link_states_[link].lanes[lane];
  }
  double vehicle_pos(int v) const { return pos_[v]; }
  double vehicle_speed(int v) const { return speed_[v]; }
  bool vehicle_active(int v) const { return active_[v] != 0; }
  /// Link the vehicle currently occupies, or -1 when not on the network.
  LinkId vehicle_link(int v) const {
    return active_[v] ? route_links_[route_begin_[v] + route_idx_[v]] : -1;
  }

  /// Invoked after every completed step (movement, transfers, spawning,
  /// sensing) with the engine in a consistent committed state. Test-only
  /// hook for per-step invariant checking; keep the callback cheap.
  void SetStepObserver(std::function<void(const Engine&, int step)> observer) {
    step_observer_ = std::move(observer);
  }

 private:
  struct LinkRuntime {
    /// Vehicle indices per lane, ordered front (largest pos) first.
    std::vector<std::deque<int>> lanes;
    double speed_factor = 1.0;
    int usable_lanes = 1;
  };

  /// What a lane's front vehicle wants to do at the link boundary this step.
  /// At most one intent per lane per step; phase 2 commits them serially.
  enum class IntentKind : uint8_t {
    kNone = 0,
    kComplete,  ///< front vehicle finishes its trip at the link end
    kCross,     ///< front vehicle transfers into next_link/next_lane
  };
  struct LaneIntent {
    IntentKind kind = IntentKind::kNone;
    int32_t vehicle = -1;
    LinkId next_link = -1;
    double overshoot_m = 0.0;  ///< distance past the stop line, pre-clamp
  };

  int RouteLength(int v) const { return route_begin_[v + 1] - route_begin_[v]; }
  LinkId RouteLinkAt(int v, int idx) const {
    return route_links_[route_begin_[v] + idx];
  }

  /// Effective top speed on a link (limit x road-work factor).
  double LinkDesiredSpeed(LinkId id) const;

  /// Picks the lane on `link` with the most rear space; returns the lane
  /// index, or -1 if no lane can accept a vehicle at position `entry_pos`.
  /// Reads committed state; used by spawning and phase-2 re-validation.
  int PickEntryLane(LinkId link, double entry_pos) const;
  /// Same, but reads the previous step's double buffer. Phase 1 must use
  /// this for cross-link looks so its result cannot depend on how far other
  /// links have progressed within the current step.
  int PickEntryLanePrev(LinkId link, double entry_pos) const;

  /// Rear space available on a lane: position of its last vehicle minus its
  /// length, or the link length when empty.
  double LaneRearSpace(LinkId link, int lane) const;
  double LaneRearSpacePrev(LinkId link, int lane) const;

  /// Attempts to place vehicle `v` at the head of its first link.
  bool TrySpawn(int vehicle_idx, double now);

  /// One dt step: two-phase movement sweep + spawning + sensing.
  void Step(int step, double now, int interval, SensorData* out);

  /// Phase 1 for one link: advance every vehicle on it (front-to-back per
  /// lane) and record at most one boundary intent per lane into `intents`
  /// (indexed by lane_offset_[link] + lane). Writes only this link's
  /// vehicles and intent slots, reads other links only through the prev_*
  /// double buffer — safe and order-independent under any link sharding.
  void SweepLinkPhase1(LinkId id, double now, LaneIntent* intents,
                      uint32_t* link_vehicle_steps);

  /// Phase 2: commit completions and transfers serially in canonical order
  /// (ascending link id, then lane index). Each crossing picks its entry
  /// lane against *committed* state — the phase-1 look was only a one-step
  /// stale speed estimate — so earlier transfers can deterministically
  /// reject later ones when the target link fills up, and a crossing never
  /// loses its slot to same-step spawning (spawns run after phase 2).
  void ApplyTransfersPhase2(const LaneIntent* intents, double now,
                            int interval, SensorData* out);

  /// True when the movement out of `link` may cross at `now`.
  bool MovementIsGreen(LinkId link, double now) const;

  const RoadNet* net_;
  EngineConfig config_;
  SignalController signals_;
  std::unique_ptr<ActuatedSignalController> actuated_;
  std::vector<char> approach_demand_;  ///< scratch, per link per step

  // Vehicle state, structure-of-arrays. Routes are CSR-flattened: vehicle
  // v's route is route_links_[route_begin_[v] .. route_begin_[v+1]).
  std::vector<LinkId> route_links_;
  std::vector<int32_t> route_begin_{0};
  std::vector<int32_t> route_idx_;   ///< index of current link within route
  std::vector<int32_t> lane_;
  std::vector<double> pos_;
  std::vector<double> speed_;
  /// Double buffer: kinematics as committed at the end of the previous
  /// step. Phase 1 reads *other* links' vehicles only through these two.
  std::vector<double> prev_pos_;
  std::vector<double> prev_speed_;
  std::vector<double> depart_time_;
  std::vector<double> spawn_time_;
  std::vector<char> active_;
  std::vector<VehicleTrace> traces_;

  std::vector<LinkRuntime> link_states_;
  /// Global lane index = lane_offset_[link] + lane; flat addressing for the
  /// per-step intent array.
  std::vector<int32_t> lane_offset_;
  int total_lanes_ = 0;
  /// Per-step scratch (intent slots, per-link counters, spawn flags); Reset
  /// at every step, so steady-state steps do no heap allocation.
  Arena step_arena_;
  std::vector<int> spawn_deferred_;  ///< scratch, reused across steps

  std::deque<int> pending_;  ///< vehicle indices not yet spawned, by depart time
  int active_count_ = 0;
  int completed_count_ = 0;
  int spawned_count_ = 0;
  double total_travel_time_s_ = 0.0;
  bool ran_ = false;
  /// Vehicle-updates executed across all steps; published as the
  /// `sim.vehicle_steps` metric when Run finishes.
  uint64_t total_vehicle_steps_ = 0;

  // Per-interval scratch accumulators for speed sensing.
  std::vector<double> speed_sum_;   // per link, current interval
  std::vector<int> speed_obs_;      // per link, current interval

  std::function<void(const Engine&, int step)> step_observer_;
};

/// Convenience wrapper: builds an engine, loads `trips`, applies `works`, and
/// runs. This is the `TOD -> (volume, speed)` oracle used by the estimators.
SensorData Simulate(const RoadNet& net, const EngineConfig& config,
                    const std::vector<TripRequest>& trips,
                    const std::vector<RoadWork>& works = {});

}  // namespace ovs::sim

#endif  // OVS_SIM_ENGINE_H_
