#ifndef OVS_SIM_ENGINE_H_
#define OVS_SIM_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sim/car_following.h"
#include "sim/roadnet.h"
#include "sim/router.h"
#include "sim/sensor_faults.h"
#include "sim/signal.h"
#include "util/mat.h"

namespace ovs::sim {

/// Engine-wide configuration. Defaults match the paper's experiment setup:
/// 2-hour horizon split into 10-minute sensor intervals.
struct EngineConfig {
  double dt_s = 1.0;            ///< integration step
  double interval_s = 600.0;    ///< sensor aggregation interval (10 min)
  double duration_s = 7200.0;   ///< total simulated horizon (2 h)
  CarFollowingParams car_following;
  SignalPlan signal_plan;
  bool enable_signals = true;
  /// Replace the fixed two-phase plan with vehicle-actuated control
  /// (ActuatedSignalController). Only meaningful when enable_signals.
  bool use_actuated_signals = false;
  ActuatedSignalController::Params actuated;
  /// Distance from the stop line within which a vehicle places an actuation
  /// call on its approach.
  double actuation_distance_m = 60.0;
  /// Record per-vehicle traces (link entry timestamps) into
  /// SensorData::trajectories — the raw material for GPS-trajectory style
  /// data pipelines. Off by default (costs memory on big runs).
  bool record_trajectories = false;
  /// Degrades the sensor outputs before Run() returns them (dropout,
  /// blackouts, stuck sensors, noise, spikes, NaN poisoning — see
  /// sim/sensor_faults.h). All-off by default; deterministic given the
  /// fault seed regardless of thread count.
  SensorFaultConfig sensor_faults;

  int NumIntervals() const {
    // At least one sensor bucket even when the horizon is shorter than the
    // aggregation interval.
    return std::max(1, static_cast<int>(duration_s / interval_s + 0.5));
  }
};

/// A per-link perturbation used for the RQ3 road-work experiments: scales the
/// attainable speed and closes lanes on the affected link.
struct RoadWork {
  LinkId link = -1;
  double speed_factor = 1.0;  ///< multiplies the link speed limit, in (0, 1]
  int closed_lanes = 0;       ///< lanes taken out of service (>= 0)
};

/// A demand event: one vehicle departing at `depart_time_s` along `route`.
struct TripRequest {
  double depart_time_s = 0.0;
  Route route;
};

/// One vehicle's realized trip: the links it traversed and when it entered
/// each (plus departure/finish). This is what a GPS logger on the vehicle
/// would capture, up to map-matching.
struct VehicleTrace {
  Route route;                       ///< links actually traversed
  std::vector<double> entry_times;   ///< entry timestamp per traversed link
  double depart_time_s = 0.0;        ///< requested departure
  double finish_time_s = -1.0;       ///< arrival; -1 if still en route at end
};

/// What the city's "sensors" observed: per-link per-interval volume (vehicles
/// entering the link) and mean speed (m/s; free-flow when no vehicle was
/// observed). This pair is the paper's (volume tensor, speed tensor).
struct SensorData {
  DMat volume;  ///< [num_links x num_intervals]
  DMat speed;   ///< [num_links x num_intervals], m/s

  int spawned_trips = 0;
  int completed_trips = 0;
  int unspawned_trips = 0;       ///< demand that never found entry space
  double mean_travel_time_s = 0.0;

  /// Per-vehicle traces (only when EngineConfig::record_trajectories).
  /// Unspawned vehicles get an empty route.
  std::vector<VehicleTrace> trajectories;
};

/// Microscopic traffic simulator: Krauss car-following on multi-lane links,
/// two-phase fixed signals, queue spillback across links, and per-interval
/// link sensors. Deterministic: same network + trips => same sensor output.
///
/// Usage: construct, optionally ApplyRoadWork, AddTrip for every vehicle,
/// then Run() once. The engine is single-shot; build a new one per scenario.
class Engine {
 public:
  Engine(const RoadNet* net, EngineConfig config);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Applies road-work perturbations. Must precede Run().
  void ApplyRoadWork(const std::vector<RoadWork>& works);

  /// Queues one vehicle. Must precede Run(). Trips with empty routes are
  /// counted as completed immediately.
  void AddTrip(TripRequest trip);

  /// Runs the full horizon and returns the sensor observations.
  SensorData Run();

  /// Number of vehicles currently on the network (valid after Run for
  /// inspection of residual congestion).
  int active_vehicles() const { return active_count_; }

  const EngineConfig& config() const { return config_; }

 private:
  struct VehicleState {
    Route route;
    int route_idx = 0;
    int lane = 0;
    double pos_m = 0.0;
    double speed = 0.0;
    double depart_time_s = 0.0;
    double spawn_time_s = -1.0;
    bool active = false;
    int last_step = -1;  ///< guards against double-update after crossing
    VehicleTrace trace;  ///< populated only when recording trajectories
  };

  struct LinkRuntime {
    /// Vehicle indices per lane, ordered front (largest pos) first.
    std::vector<std::deque<int>> lanes;
    double speed_factor = 1.0;
    int usable_lanes = 1;
  };

  /// Effective top speed on a link (limit x road-work factor).
  double LinkDesiredSpeed(LinkId id) const;

  /// Picks the lane on `link` with the most rear space; returns the lane
  /// index, or -1 if no lane can accept a vehicle at position `entry_pos`.
  int PickEntryLane(LinkId link, double entry_pos) const;

  /// Rear space available on a lane: position of its last vehicle minus its
  /// length, or the link length when empty.
  double LaneRearSpace(LinkId link, int lane) const;

  /// Attempts to place vehicle `v` at the head of its first link.
  bool TrySpawn(int vehicle_idx, double now);

  /// One dt step of car following + transitions + sensing.
  void Step(int step, double now, int interval, SensorData* out);

  /// True when the movement out of `link` may cross at `now`.
  bool MovementIsGreen(LinkId link, double now) const;

  const RoadNet* net_;
  EngineConfig config_;
  SignalController signals_;
  std::unique_ptr<ActuatedSignalController> actuated_;
  std::vector<char> approach_demand_;  ///< scratch, per link per step

  std::vector<VehicleState> vehicles_;
  std::vector<LinkRuntime> link_states_;
  std::deque<int> pending_;  ///< vehicle indices not yet spawned, by depart time
  int active_count_ = 0;
  int completed_count_ = 0;
  double total_travel_time_s_ = 0.0;
  bool ran_ = false;
  /// Vehicle-updates executed across all steps; published as the
  /// `sim.vehicle_steps` metric when Run finishes.
  uint64_t total_vehicle_steps_ = 0;

  // Per-interval scratch accumulators for speed sensing.
  std::vector<double> speed_sum_;   // per link, current interval
  std::vector<int> speed_obs_;      // per link, current interval
};

/// Convenience wrapper: builds an engine, loads `trips`, applies `works`, and
/// runs. This is the `TOD -> (volume, speed)` oracle used by the estimators.
SensorData Simulate(const RoadNet& net, const EngineConfig& config,
                    const std::vector<TripRequest>& trips,
                    const std::vector<RoadWork>& works = {});

}  // namespace ovs::sim

#endif  // OVS_SIM_ENGINE_H_
