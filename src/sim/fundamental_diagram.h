#ifndef OVS_SIM_FUNDAMENTAL_DIAGRAM_H_
#define OVS_SIM_FUNDAMENTAL_DIAGRAM_H_

#include "util/mat.h"
#include "util/status.h"

namespace ovs::sim {

/// Classical macroscopic volume/speed models (paper related work [24], [25]):
/// analytical descriptions of how link speed falls as flow approaches
/// capacity. Used to sanity-check the microscopic engine's emergent behaviour
/// and as an interpretable, calibratable alternative to the learned
/// Volume-Speed mapping.

/// Greenshields (linear speed-density): v = v_f * (1 - k / k_jam), with flow
/// q = k * v. Solving for speed as a function of flow gives two branches; we
/// expose the uncongested branch, which is what per-interval entry counts
/// (our volume sensor) correspond to below capacity.
struct GreenshieldsParams {
  double free_flow_speed = 13.89;  ///< v_f, m/s
  double jam_density = 0.133;      ///< k_jam, veh/m (≈ 7.5 m headway)

  /// Maximum flow q_max = v_f * k_jam / 4 (veh/s).
  double Capacity() const { return free_flow_speed * jam_density / 4.0; }
};

/// Speed on the uncongested branch for flow `q` (veh/s). Flows at or above
/// capacity return the capacity speed v_f / 2.
double GreenshieldsSpeed(const GreenshieldsParams& params, double flow);

/// Inverse on the uncongested branch: the flow that produces `speed`.
/// Clamped to [v_f/2, v_f].
double GreenshieldsFlow(const GreenshieldsParams& params, double speed);

/// BPR-style congestion curve (the other classical form):
/// v = v_f / (1 + alpha * (q / capacity)^beta).
struct BprParams {
  double free_flow_speed = 13.89;  ///< m/s
  double capacity = 0.5;           ///< veh/s
  double alpha = 0.15;
  double beta = 4.0;
};

double BprSpeed(const BprParams& params, double flow);

/// Calibrates a BPR curve per link from sensor observations
/// (volume [M x T] in veh/interval, speed [M x T] in m/s): grid-searches
/// alpha/beta and takes free_flow_speed/capacity from the data. Returns one
/// fitted curve per link. Links with no volume keep defaults.
StatusOr<std::vector<BprParams>> CalibrateBpr(const DMat& volume,
                                              const DMat& speed,
                                              double interval_s);

/// Mean squared speed error of fitted curves on the observations (m/s),
/// for goodness-of-fit reporting.
double BprFitRmse(const std::vector<BprParams>& fits, const DMat& volume,
                  const DMat& speed, double interval_s);

}  // namespace ovs::sim

#endif  // OVS_SIM_FUNDAMENTAL_DIAGRAM_H_
