#ifndef OVS_SIM_ROADNET_H_
#define OVS_SIM_ROADNET_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace ovs::sim {

using IntersectionId = int;
using LinkId = int;

/// A node of the road graph. Intersections with `signalized == true` run a
/// two-phase fixed-cycle signal (see SignalController).
struct Intersection {
  IntersectionId id = -1;
  double x = 0.0;  ///< meters, east
  double y = 0.0;  ///< meters, north
  bool signalized = true;
  std::vector<LinkId> incoming;
  std::vector<LinkId> outgoing;
};

/// One direction of a road segment ("link" in the paper's terminology).
struct Link {
  LinkId id = -1;
  IntersectionId from = -1;
  IntersectionId to = -1;
  double length_m = 0.0;
  int num_lanes = 1;
  double speed_limit_mps = 13.89;  ///< 50 km/h default

  /// Free-flow traversal time in seconds.
  double FreeFlowTime() const { return length_m / speed_limit_mps; }
};

/// Directed road network: intersections plus directed links. Construction is
/// additive (AddIntersection / AddLink); Validate() checks structural
/// invariants once building is done.
class RoadNet {
 public:
  RoadNet() = default;

  /// Adds an intersection at (x, y); returns its id.
  IntersectionId AddIntersection(double x, double y, bool signalized = true);

  /// Adds a directed link; endpoints must already exist. Returns its id.
  LinkId AddLink(IntersectionId from, IntersectionId to, double length_m,
                 int num_lanes, double speed_limit_mps);

  /// Adds both directions between a and b with shared geometry.
  void AddRoad(IntersectionId a, IntersectionId b, double length_m,
               int num_lanes, double speed_limit_mps);

  int num_intersections() const { return static_cast<int>(intersections_.size()); }
  int num_links() const { return static_cast<int>(links_.size()); }

  const Intersection& intersection(IntersectionId id) const {
    CHECK_GE(id, 0);
    CHECK_LT(id, num_intersections());
    return intersections_[id];
  }
  const Link& link(LinkId id) const {
    CHECK_GE(id, 0);
    CHECK_LT(id, num_links());
    return links_[id];
  }
  const std::vector<Intersection>& intersections() const { return intersections_; }
  const std::vector<Link>& links() const { return links_; }

  /// Euclidean distance between two intersections in meters.
  double Distance(IntersectionId a, IntersectionId b) const;

  /// Angle of the link direction in radians (atan2 of the endpoints).
  double LinkBearing(LinkId id) const;

  /// True if the link heads predominantly north-south (|dy| >= |dx|). Used
  /// by the two-phase signal controller.
  bool LinkIsNorthSouth(LinkId id) const;

  /// Checks structural invariants: every link endpoint exists, lengths and
  /// lane counts are positive, every intersection is reachable from some
  /// link (isolated intersections are allowed but flagged as OK).
  [[nodiscard]] Status Validate() const;

 private:
  std::vector<Intersection> intersections_;
  std::vector<Link> links_;
};

/// Builds a rows x cols grid with `spacing_m` between adjacent intersections
/// and bidirectional roads on every grid edge.
RoadNet MakeGridNetwork(int rows, int cols, double spacing_m = 300.0,
                        int num_lanes = 2, double speed_limit_mps = 13.89);

}  // namespace ovs::sim

#endif  // OVS_SIM_ROADNET_H_
