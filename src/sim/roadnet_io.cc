#include "sim/roadnet_io.h"

#include <fstream>

#include "util/string_util.h"

namespace ovs::sim {

namespace {
constexpr char kMagic[] = "OVSNET,1";
}  // namespace

Status SaveRoadNet(const RoadNet& net, const std::string& path) {
  RETURN_IF_ERROR(net.Validate());
  std::ofstream out(path);
  if (!out.is_open()) return Status::NotFound("cannot open for write: " + path);
  out << kMagic << "\n";
  out << "intersections," << net.num_intersections() << "\n";
  for (const Intersection& node : net.intersections()) {
    out << node.id << "," << FormatDouble(node.x, 3) << ","
        << FormatDouble(node.y, 3) << "," << (node.signalized ? 1 : 0) << "\n";
  }
  out << "links," << net.num_links() << "\n";
  for (const Link& l : net.links()) {
    out << l.id << "," << l.from << "," << l.to << ","
        << FormatDouble(l.length_m, 3) << "," << l.num_lanes << ","
        << FormatDouble(l.speed_limit_mps, 3) << "\n";
  }
  if (!out.good()) return Status::DataLoss("write failed: " + path);
  return Status::Ok();
}

StatusOr<RoadNet> LoadRoadNet(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line) || StripWhitespace(line) != kMagic) {
    return Status::DataLoss("bad magic in " + path);
  }

  auto read_header = [&](const char* tag) -> StatusOr<int> {
    if (!std::getline(in, line)) return Status::DataLoss("truncated " + path);
    std::vector<std::string> parts = StrSplit(StripWhitespace(line), ',');
    if (parts.size() != 2 || parts[0] != tag) {
      return Status::DataLoss("expected '" + std::string(tag) + "' header in " +
                              path);
    }
    return std::stoi(parts[1]);
  };

  RoadNet net;
  StatusOr<int> intersections = read_header("intersections");
  if (!intersections.ok()) return intersections.status();
  for (int i = 0; i < *intersections; ++i) {
    if (!std::getline(in, line)) return Status::DataLoss("truncated " + path);
    std::vector<std::string> f = StrSplit(StripWhitespace(line), ',');
    if (f.size() != 4) return Status::DataLoss("bad intersection row in " + path);
    const int id = net.AddIntersection(std::stod(f[1]), std::stod(f[2]),
                                       std::stoi(f[3]) != 0);
    if (id != std::stoi(f[0])) {
      return Status::DataLoss("non-sequential intersection ids in " + path);
    }
  }
  StatusOr<int> links = read_header("links");
  if (!links.ok()) return links.status();
  for (int i = 0; i < *links; ++i) {
    if (!std::getline(in, line)) return Status::DataLoss("truncated " + path);
    std::vector<std::string> f = StrSplit(StripWhitespace(line), ',');
    if (f.size() != 6) return Status::DataLoss("bad link row in " + path);
    const int id = net.AddLink(std::stoi(f[1]), std::stoi(f[2]),
                               std::stod(f[3]), std::stoi(f[4]),
                               std::stod(f[5]));
    if (id != std::stoi(f[0])) {
      return Status::DataLoss("non-sequential link ids in " + path);
    }
  }
  RETURN_IF_ERROR(net.Validate());
  return net;
}

}  // namespace ovs::sim
