#include "sim/roadnet_io.h"

#include <fstream>

#include "util/atomic_file.h"
#include "util/parse.h"
#include "util/string_util.h"

namespace ovs::sim {

namespace {
constexpr char kMagic[] = "OVSNET,1";
}  // namespace

Status SaveRoadNet(const RoadNet& net, const std::string& path) {
  RETURN_IF_ERROR(net.Validate());
  AtomicFileWriter writer(path);
  RETURN_IF_ERROR(writer.status());
  std::ostream& out = writer.stream();
  out << kMagic << "\n";
  out << "intersections," << net.num_intersections() << "\n";
  for (const Intersection& node : net.intersections()) {
    out << node.id << "," << FormatDouble(node.x, 3) << ","
        << FormatDouble(node.y, 3) << "," << (node.signalized ? 1 : 0) << "\n";
  }
  out << "links," << net.num_links() << "\n";
  for (const Link& l : net.links()) {
    out << l.id << "," << l.from << "," << l.to << ","
        << FormatDouble(l.length_m, 3) << "," << l.num_lanes << ","
        << FormatDouble(l.speed_limit_mps, 3) << "\n";
  }
  return writer.Commit();
}

StatusOr<RoadNet> LoadRoadNet(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line) || StripWhitespace(line) != kMagic) {
    return Status::DataLoss("bad magic in " + path);
  }

  int lineno = 1;
  auto read_header = [&](const char* tag) -> StatusOr<int> {
    if (!std::getline(in, line)) return Status::DataLoss("truncated " + path);
    ++lineno;
    std::vector<std::string> parts = StrSplit(StripWhitespace(line), ',');
    if (parts.size() != 2 || parts[0] != tag) {
      return Status::DataLoss("expected '" + std::string(tag) + "' header in " +
                              path);
    }
    return ParseInt(parts[1],
                    path + ":" + std::to_string(lineno) + " " + tag + " count");
  };
  auto ctx = [&](const char* field) {
    return path + ":" + std::to_string(lineno) + " " + field;
  };

  RoadNet net;
  StatusOr<int> intersections = read_header("intersections");
  if (!intersections.ok()) return intersections.status();
  for (int i = 0; i < *intersections; ++i) {
    if (!std::getline(in, line)) return Status::DataLoss("truncated " + path);
    ++lineno;
    std::vector<std::string> f = StrSplit(StripWhitespace(line), ',');
    if (f.size() != 4) return Status::DataLoss("bad intersection row in " + path);
    ASSIGN_OR_RETURN(const int row_id, ParseInt(f[0], ctx("intersection id")));
    ASSIGN_OR_RETURN(const double x, ParseDouble(f[1], ctx("intersection x")));
    ASSIGN_OR_RETURN(const double y, ParseDouble(f[2], ctx("intersection y")));
    ASSIGN_OR_RETURN(const int signalized,
                     ParseInt(f[3], ctx("intersection signalized")));
    const int id = net.AddIntersection(x, y, signalized != 0);
    if (id != row_id) {
      return Status::DataLoss("non-sequential intersection ids in " + path);
    }
  }
  StatusOr<int> links = read_header("links");
  if (!links.ok()) return links.status();
  for (int i = 0; i < *links; ++i) {
    if (!std::getline(in, line)) return Status::DataLoss("truncated " + path);
    ++lineno;
    std::vector<std::string> f = StrSplit(StripWhitespace(line), ',');
    if (f.size() != 6) return Status::DataLoss("bad link row in " + path);
    ASSIGN_OR_RETURN(const int row_id, ParseInt(f[0], ctx("link id")));
    ASSIGN_OR_RETURN(const int from, ParseInt(f[1], ctx("link from")));
    ASSIGN_OR_RETURN(const int to, ParseInt(f[2], ctx("link to")));
    ASSIGN_OR_RETURN(const double length, ParseDouble(f[3], ctx("link length")));
    ASSIGN_OR_RETURN(const int lanes, ParseInt(f[4], ctx("link lanes")));
    ASSIGN_OR_RETURN(const double speed_limit,
                     ParseDouble(f[5], ctx("link speed_limit")));
    const int id = net.AddLink(from, to, length, lanes, speed_limit);
    if (id != row_id) {
      return Status::DataLoss("non-sequential link ids in " + path);
    }
  }
  RETURN_IF_ERROR(net.Validate());
  return net;
}

}  // namespace ovs::sim
