#include "sim/sensor_faults.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "util/parse.h"
#include "util/rng.h"

namespace ovs::sim {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Per-model stream tags: each fault model gets an independent Rng so that
/// enabling or disabling one model never shifts another's random pattern.
enum StreamTag : uint64_t {
  kStuckStream = 1,
  kNoiseStream = 2,
  kSpikeStream = 3,
  kDropoutStream = 4,
  kBlackoutStream = 5,
  kPoisonStream = 6,
};

Rng StreamRng(const SensorFaultConfig& config, StreamTag tag) {
  return Rng(config.seed * 0x9E3779B97F4A7C15ULL + tag);
}

std::string FormatValue(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string SensorFaultConfig::ToString() const {
  std::string out;
  auto append = [&out](const char* key, double v) {
    if (v <= 0.0) return;
    if (!out.empty()) out += ",";
    out += key;
    out += ":";
    out += FormatValue(v);
  };
  append("dropout", dropout);
  append("blackout", blackout);
  append("stuck", stuck);
  append("noise", noise);
  append("spike", spike);
  append("nan", nan_poison);
  if (out.empty()) out = "none";
  return out;
}

StatusOr<SensorFaultConfig> ParseSensorFaultSpec(std::string_view spec) {
  SensorFaultConfig config;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const size_t colon = entry.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("sensor fault entry '" +
                                     std::string(entry) +
                                     "' is not key:value");
    }
    const std::string_view key = entry.substr(0, colon);
    const std::string_view value = entry.substr(colon + 1);
    if (key == "seed") {
      ASSIGN_OR_RETURN(const int seed, ParseInt(value, "sensor_fault.seed"));
      if (seed < 0) {
        return Status::InvalidArgument("sensor_fault.seed must be >= 0");
      }
      config.seed = static_cast<uint64_t>(seed);
      continue;
    }
    ASSIGN_OR_RETURN(const double v,
                     ParseDouble(value, "sensor_fault." + std::string(key)));
    double* target = nullptr;
    bool probability = true;
    if (key == "dropout") {
      target = &config.dropout;
    } else if (key == "blackout") {
      target = &config.blackout;
    } else if (key == "stuck") {
      target = &config.stuck;
    } else if (key == "noise") {
      target = &config.noise;
      probability = false;
    } else if (key == "spike") {
      target = &config.spike;
    } else if (key == "spike_mag") {
      target = &config.spike_magnitude;
      probability = false;
    } else if (key == "nan") {
      target = &config.nan_poison;
    } else {
      return Status::InvalidArgument("unknown sensor fault key '" +
                                     std::string(key) + "'");
    }
    if (v < 0.0 || (probability && v > 1.0)) {
      return Status::InvalidArgument(
          "sensor_fault." + std::string(key) + "=" + std::string(value) +
          (probability ? " is not a probability in [0, 1]"
                       : " must be >= 0"));
    }
    *target = v;
  }
  return config;
}

void ApplySensorFaults(const SensorFaultConfig& config, DMat* speed,
                       DMat* volume) {
  CHECK(speed != nullptr);
  if (volume != nullptr) {
    CHECK_EQ(volume->rows(), speed->rows());
    CHECK_EQ(volume->cols(), speed->cols());
  }
  if (!config.any()) return;
  const int links = speed->rows();
  const int intervals = speed->cols();

  // Value-altering models first, missing-data models last, so noise and
  // spikes never operate on NaN cells. Every sweep is serial and in fixed
  // (link, interval) order — the determinism contract.
  if (config.stuck > 0.0 && intervals > 1) {
    Rng rng = StreamRng(config, kStuckStream);
    for (int l = 0; l < links; ++l) {
      const bool frozen = rng.Bernoulli(config.stuck);
      const int freeze = rng.UniformInt(1, intervals - 1);
      if (!frozen) continue;
      const double held = speed->at(l, freeze - 1);
      for (int t = freeze; t < intervals; ++t) speed->at(l, t) = held;
    }
  }
  if (config.noise > 0.0) {
    Rng rng = StreamRng(config, kNoiseStream);
    for (int l = 0; l < links; ++l) {
      for (int t = 0; t < intervals; ++t) {
        speed->at(l, t) =
            std::max(0.0, speed->at(l, t) + rng.Gaussian(0.0, config.noise));
      }
    }
  }
  if (config.spike > 0.0) {
    Rng rng = StreamRng(config, kSpikeStream);
    for (int l = 0; l < links; ++l) {
      for (int t = 0; t < intervals; ++t) {
        if (rng.Bernoulli(config.spike)) {
          speed->at(l, t) *= config.spike_magnitude;
        }
      }
    }
  }
  if (config.dropout > 0.0) {
    Rng rng = StreamRng(config, kDropoutStream);
    for (int l = 0; l < links; ++l) {
      for (int t = 0; t < intervals; ++t) {
        if (rng.Bernoulli(config.dropout)) {
          speed->at(l, t) = kNan;
          if (volume != nullptr) volume->at(l, t) = kNan;
        }
      }
    }
  }
  if (config.blackout > 0.0) {
    Rng rng = StreamRng(config, kBlackoutStream);
    for (int l = 0; l < links; ++l) {
      if (!rng.Bernoulli(config.blackout)) continue;
      for (int t = 0; t < intervals; ++t) {
        speed->at(l, t) = kNan;
        if (volume != nullptr) volume->at(l, t) = kNan;
      }
    }
  }
  if (config.nan_poison > 0.0) {
    Rng rng = StreamRng(config, kPoisonStream);
    for (int l = 0; l < links; ++l) {
      for (int t = 0; t < intervals; ++t) {
        if (rng.Bernoulli(config.nan_poison)) {
          speed->at(l, t) = kNan;
          if (volume != nullptr) volume->at(l, t) = kNan;
        }
      }
    }
  }
}

DMat ObservationMask(const DMat& observed) {
  DMat mask(observed.rows(), observed.cols());
  for (int r = 0; r < observed.rows(); ++r) {
    for (int c = 0; c < observed.cols(); ++c) {
      mask.at(r, c) = std::isfinite(observed.at(r, c)) ? 1.0 : 0.0;
    }
  }
  return mask;
}

int CountInvalidCells(const DMat& observed) {
  int invalid = 0;
  for (int r = 0; r < observed.rows(); ++r) {
    for (int c = 0; c < observed.cols(); ++c) {
      if (!std::isfinite(observed.at(r, c))) ++invalid;
    }
  }
  return invalid;
}

DMat FillInvalidCells(const DMat& observed, double fill) {
  DMat out = observed;
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) {
      if (!std::isfinite(out.at(r, c))) out.at(r, c) = fill;
    }
  }
  return out;
}

}  // namespace ovs::sim
