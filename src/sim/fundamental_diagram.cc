#include "sim/fundamental_diagram.h"

#include <algorithm>
#include <cmath>

namespace ovs::sim {

double GreenshieldsSpeed(const GreenshieldsParams& params, double flow) {
  CHECK_GE(flow, 0.0);
  const double v_f = params.free_flow_speed;
  const double q_max = params.Capacity();
  if (flow >= q_max) return v_f / 2.0;
  // v solves k = q / v and v = v_f (1 - k / k_jam):
  //   v^2 - v_f v + v_f q / k_jam = 0, uncongested root:
  const double disc = v_f * v_f - 4.0 * v_f * flow / params.jam_density;
  return 0.5 * (v_f + std::sqrt(std::max(0.0, disc)));
}

double GreenshieldsFlow(const GreenshieldsParams& params, double speed) {
  const double v_f = params.free_flow_speed;
  const double v = std::clamp(speed, v_f / 2.0, v_f);
  // q = k v with k = k_jam (1 - v / v_f).
  return params.jam_density * (1.0 - v / v_f) * v;
}

double BprSpeed(const BprParams& params, double flow) {
  CHECK_GE(flow, 0.0);
  CHECK_GT(params.capacity, 0.0);
  const double x = flow / params.capacity;
  return params.free_flow_speed /
         (1.0 + params.alpha * std::pow(x, params.beta));
}

StatusOr<std::vector<BprParams>> CalibrateBpr(const DMat& volume,
                                              const DMat& speed,
                                              double interval_s) {
  if (!volume.SameShape(speed)) {
    return Status::InvalidArgument("volume/speed shape mismatch");
  }
  if (interval_s <= 0.0) {
    return Status::InvalidArgument("interval must be positive");
  }
  const int links = volume.rows();
  const int t_count = volume.cols();
  std::vector<BprParams> fits(links);

  const double alphas[] = {0.05, 0.15, 0.3, 0.6, 1.0, 2.0};
  const double betas[] = {1.0, 2.0, 4.0, 6.0};

  for (int l = 0; l < links; ++l) {
    double max_flow = 0.0, max_speed = 0.0;
    for (int t = 0; t < t_count; ++t) {
      max_flow = std::max(max_flow, volume.at(l, t) / interval_s);
      max_speed = std::max(max_speed, speed.at(l, t));
    }
    BprParams& fit = fits[l];
    if (max_flow <= 0.0) continue;  // unused link: defaults
    fit.free_flow_speed = max_speed;
    fit.capacity = std::max(1e-6, max_flow);

    double best_err = 1e300;
    for (double alpha : alphas) {
      for (double beta : betas) {
        BprParams candidate = fit;
        candidate.alpha = alpha;
        candidate.beta = beta;
        double err = 0.0;
        for (int t = 0; t < t_count; ++t) {
          const double pred =
              BprSpeed(candidate, volume.at(l, t) / interval_s);
          const double d = pred - speed.at(l, t);
          err += d * d;
        }
        if (err < best_err) {
          best_err = err;
          fit = candidate;
        }
      }
    }
  }
  return fits;
}

double BprFitRmse(const std::vector<BprParams>& fits, const DMat& volume,
                  const DMat& speed, double interval_s) {
  CHECK(volume.SameShape(speed));
  CHECK_EQ(static_cast<int>(fits.size()), volume.rows());
  CHECK_GT(interval_s, 0.0);
  double acc = 0.0;
  for (int l = 0; l < volume.rows(); ++l) {
    for (int t = 0; t < volume.cols(); ++t) {
      const double pred = BprSpeed(fits[l], volume.at(l, t) / interval_s);
      const double d = pred - speed.at(l, t);
      acc += d * d;
    }
  }
  return std::sqrt(acc / volume.numel());
}

}  // namespace ovs::sim
