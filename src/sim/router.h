#ifndef OVS_SIM_ROUTER_H_
#define OVS_SIM_ROUTER_H_

#include <map>
#include <utility>
#include <vector>

#include "sim/roadnet.h"

namespace ovs::sim {

/// A route is the ordered list of links a vehicle traverses.
using Route = std::vector<LinkId>;

/// Shortest-path router over free-flow travel times. The paper's §IV-C
/// simplification ("people choose the shortest or fastest route, one OD maps
/// to one route") is exactly this; a per-link cost override supports
/// congestion-aware rerouting experiments.
class Router {
 public:
  explicit Router(const RoadNet* net) : net_(net) { CHECK(net != nullptr); }

  /// Shortest route by free-flow time from `origin` to `dest`. Empty route
  /// means origin == dest; a NotFound status means no path exists.
  StatusOr<Route> ShortestRoute(IntersectionId origin, IntersectionId dest) const;

  /// Like ShortestRoute but with per-link costs (seconds) supplied by the
  /// caller, e.g. instantaneous congested travel times.
  StatusOr<Route> ShortestRouteWithCosts(IntersectionId origin,
                                         IntersectionId dest,
                                         const std::vector<double>& link_costs) const;

  /// Memoized free-flow route. Routes are deterministic, so results are
  /// cached per (origin, dest).
  StatusOr<Route> CachedRoute(IntersectionId origin, IntersectionId dest);

  /// Up to `k` loopless alternative routes in increasing free-flow cost
  /// (Yen's algorithm). Returns at least one route when a path exists;
  /// fewer than k when the graph has fewer alternatives. This is the hook
  /// for the paper's future-work multi-route OD modelling (§VI).
  StatusOr<std::vector<Route>> KShortestRoutes(IntersectionId origin,
                                               IntersectionId dest, int k) const;

  /// Total free-flow traversal time of a route in seconds.
  double RouteFreeFlowTime(const Route& route) const;

  /// Total length of a route in meters.
  double RouteLength(const Route& route) const;

 private:
  const RoadNet* net_;
  std::map<std::pair<IntersectionId, IntersectionId>, Route> cache_;
};

}  // namespace ovs::sim

#endif  // OVS_SIM_ROUTER_H_
