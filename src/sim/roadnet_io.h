#ifndef OVS_SIM_ROADNET_IO_H_
#define OVS_SIM_ROADNET_IO_H_

#include <string>

#include "sim/roadnet.h"

namespace ovs::sim {

/// Saves a road network as a plain-text file (header + intersection rows +
/// link rows). The format is line-oriented and diff-friendly so networks
/// exported from OpenStreetMap tooling can be reviewed and versioned.
[[nodiscard]] Status SaveRoadNet(const RoadNet& net, const std::string& path);

/// Loads a network written by SaveRoadNet. Validates before returning.
[[nodiscard]] StatusOr<RoadNet> LoadRoadNet(const std::string& path);

}  // namespace ovs::sim

#endif  // OVS_SIM_ROADNET_IO_H_
