#ifndef OVS_SIM_SENSOR_FAULTS_H_
#define OVS_SIM_SENSOR_FAULTS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/mat.h"
#include "util/status.h"

namespace ovs::sim {

/// Composable fault models applied to the simulator's per-interval link
/// sensor outputs (speed [M x T], optionally volume [M x T]). Real city
/// feeds are never clean — links go dark, sensors stick, readings spike —
/// and this config reproduces those degradations deterministically so the
/// recovery pipeline can be tested against them.
///
/// Semantics (see DESIGN.md "Degraded observations & fault injection"):
///  - dropout:  each speed cell independently goes missing (NaN) with this
///              probability; the matching volume cell is dropped too (a dead
///              detector reports neither).
///  - blackout: each link independently goes fully dark with this
///              probability — its entire speed and volume rows become NaN.
///  - stuck:    each link independently freezes with this probability: a
///              freeze interval f >= 1 is drawn uniformly and the sensor
///              repeats its interval-(f-1) reading for all t >= f.
///  - noise:    i.i.d. Gaussian noise with this stddev (m/s) added to every
///              speed cell, clamped at 0 (a speed sensor cannot go negative).
///  - spike:    each speed cell is independently multiplied by
///              `spike_magnitude` with this probability (a bogus
///              over-reading, e.g. a misconfigured radar unit).
///  - nan_poison: each cell independently becomes NaN in BOTH speed and
///              volume with this probability (corrupt telemetry records).
///
/// Determinism contract: each fault model draws from its own Rng stream
/// seeded from `seed` and a model-specific tag, in a fixed serial cell
/// order. The same seed + the same config therefore produce a bitwise
/// identical corrupted stream at any thread count, and enabling one model
/// never shifts the random pattern of another.
struct SensorFaultConfig {
  double dropout = 0.0;           ///< per-cell missing probability, [0, 1]
  double blackout = 0.0;          ///< per-link dark probability, [0, 1]
  double stuck = 0.0;             ///< per-link freeze probability, [0, 1]
  double noise = 0.0;             ///< Gaussian speed noise stddev, m/s
  double spike = 0.0;             ///< per-cell spike probability, [0, 1]
  double spike_magnitude = 3.0;   ///< multiplier applied to spiked cells
  double nan_poison = 0.0;        ///< per-cell poison probability, [0, 1]
  uint64_t seed = 20260806;       ///< base seed for all fault streams

  /// True when any fault model is active.
  bool any() const {
    return dropout > 0.0 || blackout > 0.0 || stuck > 0.0 || noise > 0.0 ||
           spike > 0.0 || nan_poison > 0.0;
  }

  /// Spec-style rendering ("dropout:0.3,noise:1") for logs and tables.
  std::string ToString() const;
};

/// Parses a "--sensor_fault=" spec: comma-separated key:value pairs with
/// keys dropout / blackout / stuck / noise / spike / spike_mag / nan / seed,
/// e.g. "dropout:0.3,noise:1.0". Probabilities must lie in [0, 1]; noise
/// and spike_mag must be >= 0. An empty spec is the all-off config.
[[nodiscard]] StatusOr<SensorFaultConfig> ParseSensorFaultSpec(
    std::string_view spec);

/// Corrupts `speed` (and, when non-null, `volume`) in place according to
/// `config`. Both matrices must share the [links x intervals] shape.
/// Deterministic (see SensorFaultConfig); runs serially by design so the
/// corrupted stream never depends on the thread count.
void ApplySensorFaults(const SensorFaultConfig& config, DMat* speed,
                       DMat* volume);

/// Observation-validity mask: 1.0 where `observed` is finite, 0.0 elsewhere.
/// This is the mask the recovery losses and metrics thread through.
[[nodiscard]] DMat ObservationMask(const DMat& observed);

/// Number of non-finite cells in `observed`.
[[nodiscard]] int CountInvalidCells(const DMat& observed);

/// Copy of `observed` with every non-finite cell replaced by `fill`. The
/// unmasked ("garbage-in") recovery path reads a dark sensor as `fill`.
[[nodiscard]] DMat FillInvalidCells(const DMat& observed, double fill);

}  // namespace ovs::sim

#endif  // OVS_SIM_SENSOR_FAULTS_H_
