#include "sim/router.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace ovs::sim {

namespace {

struct QueueEntry {
  double cost;
  IntersectionId node;
  bool operator>(const QueueEntry& other) const { return cost > other.cost; }
};

}  // namespace

StatusOr<Route> Router::ShortestRoute(IntersectionId origin,
                                      IntersectionId dest) const {
  std::vector<double> costs(net_->num_links());
  for (const Link& l : net_->links()) costs[l.id] = l.FreeFlowTime();
  return ShortestRouteWithCosts(origin, dest, costs);
}

StatusOr<Route> Router::ShortestRouteWithCosts(
    IntersectionId origin, IntersectionId dest,
    const std::vector<double>& link_costs) const {
  CHECK_GE(origin, 0);
  CHECK_LT(origin, net_->num_intersections());
  CHECK_GE(dest, 0);
  CHECK_LT(dest, net_->num_intersections());
  CHECK_EQ(static_cast<int>(link_costs.size()), net_->num_links());
  if (origin == dest) return Route{};

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(net_->num_intersections(), kInf);
  std::vector<LinkId> via(net_->num_intersections(), -1);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  dist[origin] = 0.0;
  pq.push({0.0, origin});

  while (!pq.empty()) {
    auto [cost, node] = pq.top();
    pq.pop();
    if (cost > dist[node]) continue;
    if (node == dest) break;
    for (LinkId link_id : net_->intersection(node).outgoing) {
      const Link& l = net_->link(link_id);
      CHECK_GE(link_costs[link_id], 0.0);
      const double next = cost + link_costs[link_id];
      if (next < dist[l.to]) {
        dist[l.to] = next;
        via[l.to] = link_id;
        pq.push({next, l.to});
      }
    }
  }

  if (via[dest] == -1) {
    return Status::NotFound("no route from " + std::to_string(origin) + " to " +
                            std::to_string(dest));
  }
  Route route;
  for (IntersectionId node = dest; node != origin;) {
    const LinkId link_id = via[node];
    route.push_back(link_id);
    node = net_->link(link_id).from;
  }
  std::reverse(route.begin(), route.end());
  return route;
}

StatusOr<std::vector<Route>> Router::KShortestRoutes(IntersectionId origin,
                                                     IntersectionId dest,
                                                     int k) const {
  CHECK_GT(k, 0);
  StatusOr<Route> best = ShortestRoute(origin, dest);
  if (!best.ok()) return best.status();

  std::vector<double> base_costs(net_->num_links());
  for (const Link& l : net_->links()) base_costs[l.id] = l.FreeFlowTime();
  auto route_cost = [&](const Route& route) {
    double c = 0.0;
    for (LinkId id : route) c += base_costs[id];
    return c;
  };

  std::vector<Route> accepted = {best.value()};
  // Candidate pool: (cost, route), deduplicated.
  std::vector<std::pair<double, Route>> candidates;
  auto contains = [](const std::vector<Route>& routes, const Route& r) {
    for (const Route& existing : routes) {
      if (existing == r) return true;
    }
    return false;
  };

  while (static_cast<int>(accepted.size()) < k) {
    const Route& last = accepted.back();
    // Yen: branch at every prefix of the last accepted route.
    for (size_t spur = 0; spur < last.size(); ++spur) {
      const IntersectionId spur_node =
          spur == 0 ? origin : net_->link(last[spur - 1]).to;
      std::vector<double> costs = base_costs;
      // Remove links used by accepted routes sharing this prefix.
      const Route prefix(last.begin(), last.begin() + spur);
      for (const Route& r : accepted) {
        if (r.size() >= spur &&
            std::equal(prefix.begin(), prefix.end(), r.begin()) &&
            r.size() > spur) {
          costs[r[spur]] = 1e18;  // effectively removed
        }
      }
      StatusOr<Route> spur_route =
          ShortestRouteWithCosts(spur_node, dest, costs);
      if (!spur_route.ok()) continue;
      if (route_cost(spur_route.value()) >= 1e17) continue;  // used a removed link
      Route full = prefix;
      full.insert(full.end(), spur_route->begin(), spur_route->end());
      // Loopless check: no repeated intersections.
      std::vector<IntersectionId> visited{origin};
      bool loop = false;
      for (LinkId id : full) {
        const IntersectionId to = net_->link(id).to;
        for (IntersectionId v : visited) {
          if (v == to) {
            loop = true;
            break;
          }
        }
        if (loop) break;
        visited.push_back(to);
      }
      if (loop) continue;
      if (contains(accepted, full)) continue;
      bool dup = false;
      for (const auto& [c, r] : candidates) {
        if (r == full) {
          dup = true;
          break;
        }
      }
      if (!dup) candidates.emplace_back(route_cost(full), full);
    }
    if (candidates.empty()) break;
    auto it = std::min_element(candidates.begin(), candidates.end(),
                               [](const auto& a, const auto& b) {
                                 return a.first < b.first;
                               });
    accepted.push_back(it->second);
    candidates.erase(it);
  }
  return accepted;
}

StatusOr<Route> Router::CachedRoute(IntersectionId origin, IntersectionId dest) {
  auto key = std::make_pair(origin, dest);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  StatusOr<Route> route = ShortestRoute(origin, dest);
  if (route.ok()) cache_.emplace(key, route.value());
  return route;
}

double Router::RouteFreeFlowTime(const Route& route) const {
  double t = 0.0;
  for (LinkId id : route) t += net_->link(id).FreeFlowTime();
  return t;
}

double Router::RouteLength(const Route& route) const {
  double len = 0.0;
  for (LinkId id : route) len += net_->link(id).length_m;
  return len;
}

}  // namespace ovs::sim
