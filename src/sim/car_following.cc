#include "sim/car_following.h"

#include <algorithm>
#include <cmath>

namespace ovs::sim {

double KraussSafeSpeed(double gap, double leader_speed,
                       const CarFollowingParams& params) {
  if (gap <= 0.0) return 0.0;
  // v_safe = -b*tau + sqrt(b^2 tau^2 + v_l^2 + 2 b gap)
  const double b = params.max_decel;
  const double tau = params.reaction_time;
  const double disc = b * b * tau * tau + leader_speed * leader_speed +
                      2.0 * b * gap;
  return std::max(0.0, -b * tau + std::sqrt(disc));
}

double KraussNextSpeed(double current_speed, double desired_speed, double gap,
                       double leader_speed, double dt,
                       const CarFollowingParams& params) {
  const double v_safe = KraussSafeSpeed(gap, leader_speed, params);
  double v = std::min({current_speed + params.max_accel * dt, desired_speed,
                       v_safe});
  // Braking is also bounded: never drop more than max_decel * dt per step
  // (except that speed never goes negative).
  v = std::max(v, current_speed - params.max_decel * dt);
  return std::clamp(v, 0.0, std::max(desired_speed, 0.0));
}

double FreeFlowNextSpeed(double current_speed, double desired_speed, double dt,
                         const CarFollowingParams& params) {
  return std::clamp(current_speed + params.max_accel * dt, 0.0, desired_speed);
}

}  // namespace ovs::sim
