#include "sim/roadnet.h"

#include <cmath>

namespace ovs::sim {

IntersectionId RoadNet::AddIntersection(double x, double y, bool signalized) {
  Intersection node;
  node.id = num_intersections();
  node.x = x;
  node.y = y;
  node.signalized = signalized;
  intersections_.push_back(node);
  return node.id;
}

LinkId RoadNet::AddLink(IntersectionId from, IntersectionId to, double length_m,
                        int num_lanes, double speed_limit_mps) {
  CHECK_GE(from, 0);
  CHECK_LT(from, num_intersections());
  CHECK_GE(to, 0);
  CHECK_LT(to, num_intersections());
  CHECK_NE(from, to) << "self-loop link";
  CHECK_GT(length_m, 0.0);
  CHECK_GT(num_lanes, 0);
  CHECK_GT(speed_limit_mps, 0.0);
  Link link;
  link.id = num_links();
  link.from = from;
  link.to = to;
  link.length_m = length_m;
  link.num_lanes = num_lanes;
  link.speed_limit_mps = speed_limit_mps;
  links_.push_back(link);
  intersections_[from].outgoing.push_back(link.id);
  intersections_[to].incoming.push_back(link.id);
  return link.id;
}

void RoadNet::AddRoad(IntersectionId a, IntersectionId b, double length_m,
                      int num_lanes, double speed_limit_mps) {
  AddLink(a, b, length_m, num_lanes, speed_limit_mps);
  AddLink(b, a, length_m, num_lanes, speed_limit_mps);
}

double RoadNet::Distance(IntersectionId a, IntersectionId b) const {
  const Intersection& ia = intersection(a);
  const Intersection& ib = intersection(b);
  return std::hypot(ia.x - ib.x, ia.y - ib.y);
}

double RoadNet::LinkBearing(LinkId id) const {
  const Link& l = link(id);
  const Intersection& from = intersection(l.from);
  const Intersection& to = intersection(l.to);
  return std::atan2(to.y - from.y, to.x - from.x);
}

bool RoadNet::LinkIsNorthSouth(LinkId id) const {
  const Link& l = link(id);
  const Intersection& from = intersection(l.from);
  const Intersection& to = intersection(l.to);
  return std::fabs(to.y - from.y) >= std::fabs(to.x - from.x);
}

Status RoadNet::Validate() const {
  if (intersections_.empty()) {
    return Status::FailedPrecondition("road network has no intersections");
  }
  for (const Link& l : links_) {
    if (l.from < 0 || l.from >= num_intersections() || l.to < 0 ||
        l.to >= num_intersections()) {
      return Status::FailedPrecondition("link " + std::to_string(l.id) +
                                        " has dangling endpoint");
    }
    if (l.length_m <= 0.0 || l.num_lanes <= 0 || l.speed_limit_mps <= 0.0) {
      return Status::FailedPrecondition("link " + std::to_string(l.id) +
                                        " has non-positive geometry");
    }
  }
  for (const Intersection& node : intersections_) {
    for (LinkId id : node.incoming) {
      if (id < 0 || id >= num_links() || links_[id].to != node.id) {
        return Status::Internal("incoming index corrupt at intersection " +
                                std::to_string(node.id));
      }
    }
    for (LinkId id : node.outgoing) {
      if (id < 0 || id >= num_links() || links_[id].from != node.id) {
        return Status::Internal("outgoing index corrupt at intersection " +
                                std::to_string(node.id));
      }
    }
  }
  return Status::Ok();
}

RoadNet MakeGridNetwork(int rows, int cols, double spacing_m, int num_lanes,
                        double speed_limit_mps) {
  CHECK_GT(rows, 0);
  CHECK_GT(cols, 0);
  RoadNet net;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      net.AddIntersection(c * spacing_m, r * spacing_m);
    }
  }
  auto node_id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        net.AddRoad(node_id(r, c), node_id(r, c + 1), spacing_m, num_lanes,
                    speed_limit_mps);
      }
      if (r + 1 < rows) {
        net.AddRoad(node_id(r, c), node_id(r + 1, c), spacing_m, num_lanes,
                    speed_limit_mps);
      }
    }
  }
  return net;
}

}  // namespace ovs::sim
