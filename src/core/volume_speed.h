#ifndef OVS_CORE_VOLUME_SPEED_H_
#define OVS_CORE_VOLUME_SPEED_H_

#include <memory>

#include "core/interfaces.h"
#include "core/ovs_config.h"
#include "nn/layers.h"

namespace ovs::core {

/// Volume-Speed Mapping (paper §IV-D, Eqs. 9-11): two stacked LSTMs over the
/// per-link volume series followed by a shared FC head. All links share the
/// weights (the link dimension is the batch dimension), exactly as the paper
/// states. The final sigmoid bounds speeds to [0, speed_scale].
class VolumeSpeedMapping : public VolumeSpeedIface {
 public:
  /// `num_links` sizes the optional per-link embedding table
  /// (config.v2s_link_embed_dim; see OvsConfig).
  VolumeSpeedMapping(int num_links, const OvsConfig& config, Rng* rng);

  /// q: [num_links x T] volumes -> speeds [num_links x T] in m/s.
  nn::Variable Forward(const nn::Variable& q) const override;

  /// Stacked-row-blocks override: [blocks*num_links x T] in one graph. The
  /// LSTM batch dimension is the link axis, so stacking restarts just widens
  /// the batch; the per-link embedding table is tiled per block. All ops are
  /// row-independent, so block r is bitwise-equal to Forward on that block.
  nn::Variable ForwardBatched(const nn::Variable& q, int blocks) const override;

 private:
  int num_links_;
  OvsConfig config_;
  nn::Lstm lstm1_;
  nn::Lstm lstm2_;
  nn::Linear head1_;  ///< FC(32) of Table IV
  nn::Linear head2_;  ///< to scalar speed per (link, t)
  std::unique_ptr<nn::Embedding> link_embed_;  ///< null when dim == 0
};

}  // namespace ovs::core

#endif  // OVS_CORE_VOLUME_SPEED_H_
