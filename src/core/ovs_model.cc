#include "core/ovs_model.h"

namespace ovs::core {

OvsModel::OvsModel(int num_od, int num_links, int num_intervals,
                   const DMat& incidence, const OvsConfig& config, Rng* rng,
                   Options options)
    : num_od_(num_od),
      num_links_(num_links),
      num_intervals_(num_intervals),
      config_(config),
      options_(options) {
  if (options.fc_tod_generation) {
    tod_generation_ =
        std::make_unique<FcTodGeneration>(num_od, num_intervals, config, rng);
  } else {
    tod_generation_ =
        std::make_unique<TodGeneration>(num_od, num_intervals, config, rng);
  }
  if (options.fc_tod_volume) {
    tod_volume_ = std::make_unique<FcTodVolume>(num_od, num_links, config, rng);
  } else {
    tod_volume_ = std::make_unique<TodVolumeMapping>(
        num_od, num_links, num_intervals, incidence, config, rng);
  }
  if (options.fc_volume_speed) {
    volume_speed_ = std::make_unique<FcVolumeSpeed>(num_intervals, config, rng);
  } else {
    volume_speed_ = std::make_unique<VolumeSpeedMapping>(num_links, config, rng);
  }
  RegisterModule("tod_generation", tod_generation_.get());
  RegisterModule("tod_volume", tod_volume_.get());
  RegisterModule("volume_speed", volume_speed_.get());
}

std::unique_ptr<TodGeneratorIface> OvsModel::MakeTodGenerator(Rng* rng) const {
  if (options_.fc_tod_generation) {
    return std::make_unique<FcTodGeneration>(num_od_, num_intervals_, config_,
                                             rng);
  }
  return std::make_unique<TodGeneration>(num_od_, num_intervals_, config_, rng);
}

nn::Variable OvsModel::ForwardSpeed(bool train, Rng* dropout_rng) const {
  nn::Variable g = tod_generation_->Forward();
  nn::Variable q = tod_volume_->Forward(g, train, dropout_rng);
  return volume_speed_->Forward(q);
}

}  // namespace ovs::core
