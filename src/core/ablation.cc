#include "core/ablation.h"

#include "nn/init.h"
#include "nn/ops.h"

namespace ovs::core {

FcTodGeneration::FcTodGeneration(int num_od, int num_intervals,
                                 const OvsConfig& config, Rng* rng)
    : num_od_(num_od),
      seed_dim_(config.seed_dim),
      seeds_(nn::Tensor::RandomGaussian({num_od, config.seed_dim}, 0.0f, 1.0f, rng)),
      fc_(config.seed_dim, num_intervals, rng) {
  RegisterModule("fc", &fc_);
}

nn::Variable FcTodGeneration::Forward() const {
  nn::Variable z(seeds_, /*requires_grad=*/false);
  // ReLU keeps counts non-negative but leaves them unbounded above.
  return nn::Relu(fc_.Forward(z));
}

void FcTodGeneration::ResampleSeeds(Rng* rng) {
  seeds_ = nn::Tensor::RandomGaussian({num_od_, seed_dim_}, 0.0f, 1.0f, rng);
}

void FcTodGeneration::set_seeds(const nn::Tensor& seeds) {
  CHECK(seeds.SameShape(seeds_));
  seeds_ = seeds;
}

FcTodVolume::FcTodVolume(int num_od, int num_links, const OvsConfig& /*config*/,
                         Rng* rng) {
  w1_ = RegisterParameter(
      "w1", nn::XavierUniform({num_links, num_od}, num_od, num_links, rng));
  w2_ = RegisterParameter(
      "w2", nn::XavierUniform({num_links, num_links}, num_links, num_links, rng));
  // Bias the first layer toward a positive pass-through so initial volumes
  // are non-trivial.
  for (int i = 0; i < w1_.numel(); ++i) {
    w1_.mutable_value()[i] = std::abs(w1_.mutable_value()[i]);
  }
}

nn::Variable FcTodVolume::Forward(const nn::Variable& g, bool /*train*/,
                                  Rng* /*dropout_rng*/) const {
  nn::Variable h = nn::Relu(nn::MatMul(w1_, g));   // [M x T]
  return nn::Relu(nn::MatMul(w2_, h));
}

FcVolumeSpeed::FcVolumeSpeed(int num_intervals, const OvsConfig& config,
                             Rng* rng)
    : config_(config),
      fc1_(num_intervals, num_intervals, rng),
      fc2_(num_intervals, num_intervals, rng) {
  RegisterModule("fc1", &fc1_);
  RegisterModule("fc2", &fc2_);
}

nn::Variable FcVolumeSpeed::Forward(const nn::Variable& q) const {
  nn::Variable q_norm = nn::ScalarMul(q, 1.0f / config_.volume_norm);
  nn::Variable h = nn::Sigmoid(fc1_.Forward(q_norm));
  nn::Variable v_norm = nn::Sigmoid(fc2_.Forward(h));
  return nn::ScalarMul(v_norm, config_.speed_scale);
}

}  // namespace ovs::core
