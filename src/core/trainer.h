#ifndef OVS_CORE_TRAINER_H_
#define OVS_CORE_TRAINER_H_

#include <vector>

#include "core/aux_loss.h"
#include "core/checkpoint.h"
#include "core/ovs_model.h"
#include "core/run_control.h"
#include "core/train_guard.h"
#include "core/training_data.h"
#include "od/tod_tensor.h"
#include "util/status.h"

namespace ovs::core {

/// Optimization hyperparameters for the paper's two-stage training pipeline
/// plus the test-time TOD recovery (paper §V-E, Fig. 8). Epoch counts are
/// deliberately modest: the networks are tiny and the fast bench setting
/// must finish in seconds; raise them via TrainerConfig for full runs.
struct TrainerConfig {
  int stage1_epochs = 120;    ///< Volume->Speed supervised training
  int stage2_epochs = 120;    ///< TOD->Volume through frozen V2S
  int recovery_epochs = 300;  ///< test-time fit of TOD Generation
  int recovery_restarts = 1;  ///< seed resamples; best-loss result wins
  /// Fit the recovery restarts as ONE stacked [R*N_od x T] graph per epoch
  /// (block-diagonal batched GEMMs through the frozen mappings) instead of
  /// R independent per-restart graphs. Bitwise-identical results either
  /// way — every op in the chain is row-block independent, seeds are drawn
  /// in the same serial order, and each restart keeps its own Adam/guard —
  /// but the stacked graph feeds the kernels R-times-taller matrices, which
  /// is where the register-blocked GEMMs earn their keep. Off = the legacy
  /// restart-parallel path (kept as the equivalence reference).
  bool batch_restarts = true;
  float lr = 1e-3f;           ///< paper Table V
  float recovery_lr = 5e-3f;
  float grad_clip = 1.0f;
  /// Extra direct supervision weight on predicted volume during stage 2.
  /// The paper trains stage 2 on speed loss alone; with a surrogate V2S that
  /// is locally flat in volume that leaves the TOD2V output scale
  /// unidentified, so by default we anchor it with the generated volumes
  /// (still simulator-generated data only — no ground truth leaks).
  float stage2_volume_weight = 0.5f;
  /// Strength of the Gaussian-prior pull on the recovered TOD (toward the
  /// training-distribution mean, in normalized units). The paper's TOD
  /// Generation assumes Gaussian priors (§IV-B); this realizes that prior as
  /// a penalty, damping the unidentified directions that free-flow links
  /// leave in the speed loss. 0 disables.
  float recovery_prior_weight = 0.05f;
  /// Huber delta (in normalized speed units) for the recovery main loss.
  /// Quadratic residuals within delta, linear beyond — so a handful of links
  /// whose slowdown no demand explains (road work, accidents; paper RQ3)
  /// cannot drag the whole TOD. 0 falls back to plain MSE.
  float recovery_huber_delta = 0.1f;
  bool verbose = false;
  /// Exclude non-finite observed-speed cells (dark/failed sensors) from the
  /// recovery loss and the prior's kernel regression. Off = the garbage-in
  /// path: invalid cells are read as 0 m/s (a total-jam signal) and bias the
  /// fit — kept only as the A/B reference for the masked path.
  bool mask_observations = true;
  /// Crash-safe checkpoint/resume (stage1.ckpt / stage2.ckpt /
  /// recovery.restart<k>.ckpt under `checkpoint.dir`). A killed-and-resumed
  /// run produces bitwise-identical results to an uninterrupted one.
  CheckpointOptions checkpoint;
  /// Divergence policy: per-epoch finiteness checks with rollback-retry at
  /// reduced LR, bounded by max_retries (see core/train_guard.h).
  TrainGuardOptions guard;
  /// Optional external deadline/cancel control, polled once per recovery
  /// epoch next to the guard. A non-OK poll aborts RecoverTod with that
  /// status (within one epoch of the poll turning non-OK) and leaves the
  /// model trainable again. Not owned; null = never aborts.
  const RunControl* run_control = nullptr;
};

/// Drives training and recovery for an OvsModel.
class OvsTrainer {
 public:
  OvsTrainer(OvsModel* model, TrainerConfig config);

  /// Stage 1 (paper §V-E step 1): fit Volume->Speed on generated
  /// (volume, speed) pairs. Returns the per-epoch mean loss curve, or an
  /// Internal error when the stage diverges beyond the guard's retry cap.
  [[nodiscard]] StatusOr<std::vector<double>> TrainVolumeSpeed(
      const TrainingData& data);

  /// Stage 2 (step 2): freeze V2S, fit TOD->Volume so that the chained
  /// prediction matches generated speed. Returns the loss curve, or an
  /// Internal error on unrecoverable divergence.
  [[nodiscard]] StatusOr<std::vector<double>> TrainTodVolume(
      const TrainingData& data);

  /// Sets up the recovery prior bookkeeping (training-cell mean and the
  /// per-sample speed/level pairs for the adaptive level estimate) without
  /// training anything. TrainTodVolume calls this implicitly; call it
  /// directly when reusing already-trained mappings.
  void PrimeRecoveryPrior(const TrainingData& data);

  /// Test-time recovery: freeze both mappings, fit TOD Generation to the
  /// observed speed (optionally with auxiliary losses), and return the
  /// recovered TOD tensor. Non-finite observation cells are excluded via
  /// the validity mask when `mask_observations` is set (read as 0 m/s
  /// otherwise). Errors: InvalidArgument when no observation cell is
  /// finite or when recovery_restarts > 1 with `rng == nullptr` (restarts
  /// need it to resample seeds); Internal when every restart diverges
  /// beyond the guard cap; whatever `run_control` reports (e.g.
  /// DeadlineExceeded, Cancelled) when the external control aborts the fit.
  [[nodiscard]] StatusOr<od::TodTensor> RecoverTod(const DMat& observed_speed,
                                                   const AuxLossSet* aux,
                                                   Rng* rng);

  /// Final main-loss value of the last recovery (normalized units).
  [[nodiscard]] double last_recovery_loss() const {
    return last_recovery_loss_;
  }

 private:
  OvsModel* model_;
  TrainerConfig config_;
  Rng dropout_rng_;
  double last_recovery_loss_ = 0.0;
  /// Mean training TOD cell, set by TrainTodVolume; the Gaussian prior mean.
  double prior_cell_mean_ = 0.0;
  /// Per-training-sample (speed tensor, mean TOD cell) kept so recovery can
  /// adapt the prior level to the observed speed (kernel regression over
  /// the generated samples — no ground-truth leakage).
  std::vector<std::pair<DMat, double>> sample_speed_levels_;
};

}  // namespace ovs::core

#endif  // OVS_CORE_TRAINER_H_
