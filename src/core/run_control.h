#ifndef OVS_CORE_RUN_CONTROL_H_
#define OVS_CORE_RUN_CONTROL_H_

#include <functional>

#include "util/status.h"

namespace ovs::core {

/// External control over a long-running fit. The trainer polls `poll` once
/// per recovery epoch — between epochs, never mid-graph — and a non-OK
/// status aborts the run and propagates to the caller with the model
/// restored to a trainable state. The callback owns every clock or
/// cancellation-flag read: core itself stays wall-clock-free (the
/// wallclock-in-core lint rule), so deadlines live in the serving layer and
/// arrive here only as "should this run stop" answers. The legacy
/// restart-parallel recovery path polls from worker threads concurrently,
/// so the callback must be thread-safe.
struct RunControl {
  std::function<Status()> poll;

  Status Poll() const { return poll ? poll() : Status::Ok(); }
};

}  // namespace ovs::core

#endif  // OVS_CORE_RUN_CONTROL_H_
