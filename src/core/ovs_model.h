#ifndef OVS_CORE_OVS_MODEL_H_
#define OVS_CORE_OVS_MODEL_H_

#include <memory>

#include "core/ablation.h"
#include "core/ovs_config.h"
#include "core/tod_generation.h"
#include "core/tod_volume.h"
#include "core/volume_speed.h"
#include "util/mat.h"

namespace ovs::core {

/// The full OVS model (paper Fig. 3): TOD Generation -> TOD-Volume Mapping
/// -> Volume-Speed Mapping. Each stage can be swapped for an FC baseline
/// (Table IX ablations) via Options.
class OvsModel : public nn::Module {
 public:
  struct Options {
    bool fc_tod_generation = false;  ///< "OVS - TOD"
    bool fc_tod_volume = false;      ///< "OVS - TOD2V"
    bool fc_volume_speed = false;    ///< "OVS - V2S"
  };

  OvsModel(int num_od, int num_links, int num_intervals, const DMat& incidence,
           const OvsConfig& config, Rng* rng, Options options);
  OvsModel(int num_od, int num_links, int num_intervals, const DMat& incidence,
           const OvsConfig& config, Rng* rng)
      : OvsModel(num_od, num_links, num_intervals, incidence, config, rng,
                 Options()) {}

  /// Stage outputs. Shapes: TOD [N_od x T], volume/speed [M x T].
  nn::Variable GenerateTod() const { return tod_generation_->Forward(); }
  nn::Variable VolumeFromTod(const nn::Variable& g, bool train = false,
                             Rng* dropout_rng = nullptr) const {
    return tod_volume_->Forward(g, train, dropout_rng);
  }
  nn::Variable SpeedFromVolume(const nn::Variable& q) const {
    return volume_speed_->Forward(q);
  }

  /// Batched-restart variants: `blocks` independent inputs stacked row-wise,
  /// outputs stacked the same way, block r bitwise-equal to the unbatched
  /// call on that block (see TodVolumeIface::ForwardBatched).
  nn::Variable VolumeFromTodBatched(const nn::Variable& g, int blocks,
                                    bool train = false,
                                    Rng* dropout_rng = nullptr) const {
    return tod_volume_->ForwardBatched(g, blocks, train, dropout_rng);
  }
  nn::Variable SpeedFromVolumeBatched(const nn::Variable& q, int blocks) const {
    return volume_speed_->ForwardBatched(q, blocks);
  }

  /// Full chain from the generation seeds to predicted speed.
  nn::Variable ForwardSpeed(bool train = false, Rng* dropout_rng = nullptr) const;

  TodGeneratorIface& tod_generation() { return *tod_generation_; }
  TodVolumeIface& tod_volume() { return *tod_volume_; }
  VolumeSpeedIface& volume_speed() { return *volume_speed_; }

  /// Builds a fresh generator of the same architecture as tod_generation()
  /// (respecting the ablation options). Used by the trainer to fit recovery
  /// restarts concurrently, each on its own generator instance. `rng` only
  /// feeds the throwaway initialization; callers overwrite weights and seeds.
  std::unique_ptr<TodGeneratorIface> MakeTodGenerator(Rng* rng) const;

  const OvsConfig& config() const { return config_; }
  int num_od() const { return num_od_; }
  int num_links() const { return num_links_; }
  int num_intervals() const { return num_intervals_; }

 private:
  int num_od_;
  int num_links_;
  int num_intervals_;
  OvsConfig config_;
  Options options_;
  std::unique_ptr<TodGeneratorIface> tod_generation_;
  std::unique_ptr<TodVolumeIface> tod_volume_;
  std::unique_ptr<VolumeSpeedIface> volume_speed_;
};

}  // namespace ovs::core

#endif  // OVS_CORE_OVS_MODEL_H_
