#include "core/volume_speed.h"

#include "obs/trace.h"

namespace ovs::core {

VolumeSpeedMapping::VolumeSpeedMapping(int num_links, const OvsConfig& config,
                                       Rng* rng)
    : num_links_(num_links),
      config_(config),
      lstm1_(1 + config.v2s_link_embed_dim, config.lstm_hidden, rng),
      lstm2_(config.lstm_hidden, config.lstm_hidden, rng),
      head1_(config.lstm_hidden, config.speed_head_hidden, rng),
      head2_(config.speed_head_hidden, 1, rng) {
  CHECK_GT(num_links, 0);
  RegisterModule("lstm1", &lstm1_);
  RegisterModule("lstm2", &lstm2_);
  RegisterModule("head1", &head1_);
  RegisterModule("head2", &head2_);
  if (config.v2s_link_embed_dim > 0) {
    link_embed_ =
        std::make_unique<nn::Embedding>(num_links, config.v2s_link_embed_dim, rng);
    RegisterModule("link_embed", link_embed_.get());
  }
}

nn::Variable VolumeSpeedMapping::Forward(const nn::Variable& q) const {
  return ForwardBatched(q, /*blocks=*/1);
}

nn::Variable VolumeSpeedMapping::ForwardBatched(const nn::Variable& q,
                                                int blocks) const {
  OVS_TRACE_SCOPE("volume_speed.forward");
  CHECK_GE(blocks, 1);
  CHECK_EQ(q.value().rank(), 2);
  CHECK_EQ(q.value().dim(0), blocks * num_links_);
  const int t_count = q.value().dim(1);

  nn::Variable q_norm = nn::ScalarMul(q, 1.0f / config_.volume_norm);
  std::vector<nn::Variable> xs;
  xs.reserve(t_count);
  for (int t = 0; t < t_count; ++t) {
    nn::Variable col = nn::ColSlice(q_norm, t);
    if (link_embed_ != nullptr) {
      nn::Variable table = link_embed_->Table();
      if (blocks > 1) table = nn::TileRows(table, blocks);
      col = nn::ConcatFeatures(col, table);
    }
    xs.push_back(col);
  }

  std::vector<nn::Variable> h1 = lstm1_.Forward(xs);   // Eq. 9
  std::vector<nn::Variable> h2 = lstm2_.Forward(h1);   // Eq. 10

  std::vector<nn::Variable> cols;
  cols.reserve(t_count);
  for (int t = 0; t < t_count; ++t) {
    nn::Variable h = nn::Sigmoid(head1_.Forward(h2[t]));  // Eq. 11 (FC 32)
    cols.push_back(nn::Sigmoid(head2_.Forward(h)));
  }
  return nn::ScalarMul(nn::ConcatCols(cols), config_.speed_scale);
}

}  // namespace ovs::core
