#ifndef OVS_CORE_INTERFACES_H_
#define OVS_CORE_INTERFACES_H_

#include <vector>

#include "nn/module.h"
#include "nn/ops.h"
#include "nn/variable.h"
#include "util/rng.h"

namespace ovs::core {

/// Interface of the TOD Generation stage: seeds -> TOD tensor [N_od x T].
/// The ablation study (Table IX) swaps implementations behind this.
class TodGeneratorIface : public nn::Module {
 public:
  virtual nn::Variable Forward() const = 0;
  /// Re-draws the random seeds for a fresh recovery attempt.
  virtual void ResampleSeeds(Rng* rng) = 0;
  /// The constant Gaussian seed tensor decoded by Forward. Exposed so the
  /// trainer can fit several restarts on independent generator instances
  /// (seeds pre-sampled serially, fits run concurrently) and copy the
  /// winner's state back.
  virtual const nn::Tensor& seeds() const = 0;
  virtual void set_seeds(const nn::Tensor& seeds) = 0;
  /// Re-initializes the decoder so its output starts near
  /// `fraction * tod_scale` (the Gaussian prior mean) instead of the sigmoid
  /// default of 0.5 — otherwise recovery starts biased high and directions
  /// the speed loss cannot see never recover. Default: no-op.
  virtual void InitializeOutputLevel(float /*fraction*/) {}
};

/// Interface of the TOD->Volume stage: [N_od x T] -> [M x T].
///
/// ForwardBatched is the batched-restart entry point: `g` carries `blocks`
/// independent [N_od x T] row blocks stacked vertically, the result stacks
/// the per-block outputs the same way, and every block must be
/// bitwise-identical to Forward on that block alone (the contract the
/// batched recovery path and its parity tests rely on). The default
/// implementation slices, forwards, and re-stacks — structurally batched
/// implementations override it with dense stacked math.
class TodVolumeIface : public nn::Module {
 public:
  virtual nn::Variable Forward(const nn::Variable& g, bool train,
                               Rng* dropout_rng) const = 0;

  virtual nn::Variable ForwardBatched(const nn::Variable& g, int blocks,
                                      bool train, Rng* dropout_rng) const {
    CHECK_GE(blocks, 1);
    if (blocks == 1) return Forward(g, train, dropout_rng);
    CHECK_EQ(g.value().dim(0) % blocks, 0);
    const int rows = g.value().dim(0) / blocks;
    std::vector<nn::Variable> outs;
    outs.reserve(blocks);
    for (int b = 0; b < blocks; ++b) {
      outs.push_back(
          Forward(nn::SliceRows(g, b * rows, rows), train, dropout_rng));
    }
    return nn::ConcatRows(outs);
  }
};

/// Interface of the Volume->Speed stage: [M x T] -> [M x T].
/// ForwardBatched: same stacked-row-blocks contract as TodVolumeIface.
class VolumeSpeedIface : public nn::Module {
 public:
  virtual nn::Variable Forward(const nn::Variable& q) const = 0;

  virtual nn::Variable ForwardBatched(const nn::Variable& q,
                                      int blocks) const {
    CHECK_GE(blocks, 1);
    if (blocks == 1) return Forward(q);
    CHECK_EQ(q.value().dim(0) % blocks, 0);
    const int rows = q.value().dim(0) / blocks;
    std::vector<nn::Variable> outs;
    outs.reserve(blocks);
    for (int b = 0; b < blocks; ++b) {
      outs.push_back(Forward(nn::SliceRows(q, b * rows, rows)));
    }
    return nn::ConcatRows(outs);
  }
};

}  // namespace ovs::core

#endif  // OVS_CORE_INTERFACES_H_
