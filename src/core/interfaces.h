#ifndef OVS_CORE_INTERFACES_H_
#define OVS_CORE_INTERFACES_H_

#include "nn/module.h"
#include "nn/variable.h"
#include "util/rng.h"

namespace ovs::core {

/// Interface of the TOD Generation stage: seeds -> TOD tensor [N_od x T].
/// The ablation study (Table IX) swaps implementations behind this.
class TodGeneratorIface : public nn::Module {
 public:
  virtual nn::Variable Forward() const = 0;
  /// Re-draws the random seeds for a fresh recovery attempt.
  virtual void ResampleSeeds(Rng* rng) = 0;
  /// The constant Gaussian seed tensor decoded by Forward. Exposed so the
  /// trainer can fit several restarts on independent generator instances
  /// (seeds pre-sampled serially, fits run concurrently) and copy the
  /// winner's state back.
  virtual const nn::Tensor& seeds() const = 0;
  virtual void set_seeds(const nn::Tensor& seeds) = 0;
  /// Re-initializes the decoder so its output starts near
  /// `fraction * tod_scale` (the Gaussian prior mean) instead of the sigmoid
  /// default of 0.5 — otherwise recovery starts biased high and directions
  /// the speed loss cannot see never recover. Default: no-op.
  virtual void InitializeOutputLevel(float /*fraction*/) {}
};

/// Interface of the TOD->Volume stage: [N_od x T] -> [M x T].
class TodVolumeIface : public nn::Module {
 public:
  virtual nn::Variable Forward(const nn::Variable& g, bool train,
                               Rng* dropout_rng) const = 0;
};

/// Interface of the Volume->Speed stage: [M x T] -> [M x T].
class VolumeSpeedIface : public nn::Module {
 public:
  virtual nn::Variable Forward(const nn::Variable& q) const = 0;
};

}  // namespace ovs::core

#endif  // OVS_CORE_INTERFACES_H_
