#ifndef OVS_CORE_TOD_VOLUME_H_
#define OVS_CORE_TOD_VOLUME_H_

#include "core/interfaces.h"
#include "core/ovs_config.h"
#include "nn/convert.h"
#include "nn/layers.h"
#include "util/mat.h"

namespace ovs::core {

/// TOD-Volume Mapping (paper §IV-C, Fig. 5): OD -> route trip counts via a
/// sigmoid FC (Eq. 3), a dynamic 2-D attention built from two 1x3
/// convolutions over the route series (Eqs. 5-7) and an FC+softmax over lag
/// coefficients (Eq. 8), applied to the route->link aggregated counts
/// (Eq. 4). The fixed route->link incidence comes from the routing policy
/// (shortest route per OD, the paper's simplification).
class TodVolumeMapping : public TodVolumeIface {
 public:
  TodVolumeMapping(int num_od, int num_links, int num_intervals,
                   const DMat& incidence, const OvsConfig& config, Rng* rng);

  /// g: [num_od x T] trip counts -> link volumes [num_links x T].
  /// `train` enables dropout on the attention features.
  nn::Variable Forward(const nn::Variable& g, bool train,
                       Rng* dropout_rng) const override;

  /// Structurally batched override: `g` is [blocks*num_od x T], the result
  /// [blocks*num_links x T], one dense stacked graph instead of `blocks`
  /// sliced ones. Every op in the pipeline is row-block independent
  /// (per-row GEMMs, per-item convs, per-block SumBatchBlocks /
  /// BatchedBuildAttentionInput / BatchedFixedMatMul), so block r is
  /// bitwise-identical to Forward on that block. Caveat: with dropout
  /// enabled the RNG stream is consumed in stacked order, which differs
  /// from per-block draws — batched recovery runs with train=false, where
  /// the paths are exactly equal.
  nn::Variable ForwardBatched(const nn::Variable& g, int blocks, bool train,
                              Rng* dropout_rng) const override;

  /// The lag-attention tensor for inspection: [M*T x lags] rows sum to 1.
  nn::Variable AttentionFor(const nn::Variable& g) const;

  int num_links() const { return num_links_; }

 private:
  /// Shared pipeline up to the attention matrix.
  struct AttentionParts {
    nn::Variable route_counts;  // [N_od x T], trip units
    nn::Variable alpha;         // [M*T x lags]
    nn::Variable gate;          // [M*T x 1] in (0, 1)
  };
  AttentionParts ComputeAttention(const nn::Variable& g, int blocks,
                                  bool train, Rng* dropout_rng) const;

  int num_od_;
  int num_links_;
  int num_intervals_;
  OvsConfig config_;
  nn::Tensor incidence_;  ///< [M x N_od], constant

  nn::Linear od_route_;       ///< Eq. 3, time-axis FC shared across ODs
  nn::Conv1d conv1_;          ///< Eq. 5
  nn::Conv1d conv2_;          ///< Eq. 6
  nn::Linear att_fc_;         ///< Eq. 8, first FC
  nn::Linear att_out_;        ///< Eq. 8, to lag logits
  nn::Linear att_gate_;       ///< attenuation gate (queued/unfinished trips)
  nn::Embedding link_embed_;  ///< makes alpha link-dependent (index j)
};

}  // namespace ovs::core

#endif  // OVS_CORE_TOD_VOLUME_H_
