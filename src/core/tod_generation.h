#ifndef OVS_CORE_TOD_GENERATION_H_
#define OVS_CORE_TOD_GENERATION_H_

#include "core/interfaces.h"
#include "core/ovs_config.h"
#include "nn/layers.h"

namespace ovs::core {

/// TOD Generation module (paper §IV-B, Eqs. 1-2): decodes a fixed Gaussian
/// seed per OD pair through two sigmoid FC layers into a TOD time series.
/// The seeds are sampled once at construction and stay fixed; test-time
/// recovery optimizes only the decoder weights.
class TodGeneration : public TodGeneratorIface {
 public:
  TodGeneration(int num_od, int num_intervals, const OvsConfig& config, Rng* rng);

  /// Decodes the seeds into a TOD tensor [num_od x T] in trip-count units
  /// (sigmoid output scaled by config.tod_scale).
  nn::Variable Forward() const override;

  /// Re-draws the Gaussian seeds (used to restart recovery from a different
  /// basin when fitting observed speed).
  void ResampleSeeds(Rng* rng) override;

  /// Shrinks the output layer and sets its bias to logit(fraction) so the
  /// decoded TOD starts near fraction * tod_scale.
  void InitializeOutputLevel(float fraction) override;

  const nn::Tensor& seeds() const override { return seeds_; }
  void set_seeds(const nn::Tensor& seeds) override;

  int num_od() const { return num_od_; }
  int num_intervals() const { return num_intervals_; }

 private:
  int num_od_;
  int num_intervals_;
  float tod_scale_;
  nn::Tensor seeds_;  ///< [num_od x seed_dim], constant input z_i
  nn::Linear fc1_;
  nn::Linear fc2_;
};

}  // namespace ovs::core

#endif  // OVS_CORE_TOD_GENERATION_H_
