#include "core/trainer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <string>

#include "nn/convert.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/session.h"
#include "obs/trace.h"
#include "sim/sensor_faults.h"
#include "util/thread_pool.h"

namespace ovs::core {

namespace {

/// Normalized float target from a DMat measurement.
nn::Tensor NormalizedTarget(const DMat& m, double scale) {
  CHECK_GT(scale, 0.0);
  nn::Tensor t = nn::FromDMat(m);
  t.ScaleInPlace(static_cast<float>(1.0 / scale));
  return t;
}

/// The final epoch is always checkpointed so a finished stage can be resumed
/// as a no-op; in between, every `every` epochs (values < 1: final only).
bool ShouldCheckpoint(int epoch, int total_epochs, int every) {
  if (epoch + 1 == total_epochs) return true;
  return every >= 1 && (epoch + 1) % every == 0;
}

/// Snapshot of a training stage: module parameters, Adam moments/step, the
/// completed-epoch count, the running loss, and the stage's RNG stream.
TrainerCheckpoint MakeStageCheckpoint(const std::string& stage, int epoch,
                                      double loss, const nn::Module& module,
                                      const nn::Adam& opt,
                                      std::string rng_state) {
  TrainerCheckpoint ckpt;
  ckpt.stage = stage;
  ckpt.epoch = epoch;
  ckpt.loss = loss;
  ckpt.rng_state = std::move(rng_state);
  for (const auto& [name, v] : module.NamedParameters()) {
    ckpt.tensors.emplace_back(name, v.value());
  }
  AppendAdamState(opt, &ckpt);
  return ckpt;
}

/// Tries to resume `stage` from `<dir>/<stage>.ckpt`. On success restores
/// module parameters, optimizer state, and (when `rng` is non-null and the
/// checkpoint carries a stream) the RNG, sets `*loss_out` to the
/// checkpointed loss, and returns the epoch to continue from. Any unusable
/// checkpoint — missing, corrupt, or from a different stage/architecture —
/// is reported and the stage trains from scratch (returns 0).
int TryResumeStage(const CheckpointOptions& ck, const std::string& stage,
                   nn::Module* module, nn::Adam* opt, Rng* rng,
                   double* loss_out) {
  const std::string path = ck.dir + "/" + stage + ".ckpt";
  StatusOr<TrainerCheckpoint> loaded = LoadTrainerCheckpoint(path);
  if (!loaded.ok()) {
    if (loaded.status().code() != StatusCode::kNotFound) {
      LOG(ERROR) << "ignoring unusable checkpoint " << path << ": "
                 << loaded.status().ToString();
    }
    return 0;
  }
  if (loaded->stage != stage) {
    LOG(ERROR) << "checkpoint " << path << " is for stage '" << loaded->stage
               << "', expected '" << stage << "'; training from scratch";
    return 0;
  }
  Status status = RestoreModuleParameters(*loaded, module);
  if (status.ok()) {
    status = RestoreAdamState(*loaded, opt->moments_m().size(), opt);
  }
  if (status.ok() && rng != nullptr && !loaded->rng_state.empty()) {
    status = rng->LoadState(loaded->rng_state);
  }
  if (!status.ok()) {
    LOG(ERROR) << "cannot resume from " << path << ": " << status.ToString();
    return 0;
  }
  *loss_out = loaded->loss;
  LOG(INFO) << "resuming " << stage << " from epoch " << loaded->epoch;
  return loaded->epoch;
}

}  // namespace

OvsTrainer::OvsTrainer(OvsModel* model, TrainerConfig config)
    : model_(model), config_(config), dropout_rng_(987654321) {
  CHECK(model != nullptr);
  // Threading knob: a positive OvsConfig::num_threads resizes the global
  // pool; 0 keeps the process default (OVS_NUM_THREADS / hardware).
  if (model->config().num_threads > 0) {
    SetGlobalThreads(model->config().num_threads);
  }
}

StatusOr<std::vector<double>> OvsTrainer::TrainVolumeSpeed(
    const TrainingData& data) {
  CHECK(!data.samples.empty());
  const double speed_scale = model_->config().speed_scale;

  std::vector<nn::Tensor> volume_inputs;
  std::vector<nn::Tensor> speed_targets;
  for (const TrainingSample& s : data.samples) {
    volume_inputs.push_back(nn::FromDMat(s.volume));
    speed_targets.push_back(NormalizedTarget(s.speed, speed_scale));
  }

  OVS_TRACE_SCOPE("trainer.stage1");
  nn::Adam opt(model_->volume_speed().Parameters(), config_.lr);
  std::vector<double> curve;
  curve.reserve(config_.stage1_epochs);

  const CheckpointOptions& ck = config_.checkpoint;
  const std::string ckpt_path = ck.dir + "/stage1.ckpt";
  int start_epoch = 0;
  double resumed_loss = 0.0;
  if (ck.enabled() && ck.resume) {
    start_epoch = TryResumeStage(ck, "stage1", &model_->volume_speed(), &opt,
                                 /*rng=*/nullptr, &resumed_loss);
    if (start_epoch > config_.stage1_epochs) start_epoch = config_.stage1_epochs;
    // A finished stage resumes as a no-op; keep curve.back() meaningful.
    if (start_epoch > 0 && start_epoch >= config_.stage1_epochs) {
      curve.push_back(resumed_loss);
    }
  }
  // Divergence guard: snapshot before the loop (so even an epoch-0 blowup
  // has a rollback target), then after every healthy epoch.
  TrainGuard guard("stage1", config_.guard, config_.lr);
  guard.Snapshot(start_epoch, resumed_loss, model_->volume_speed(), opt,
                 /*rng_state=*/"");
  for (int epoch = start_epoch; epoch < config_.stage1_epochs;) {
    OVS_TRACE_SCOPE("trainer.stage1.epoch");
    double epoch_loss = 0.0;
    for (size_t i = 0; i < volume_inputs.size(); ++i) {
      opt.ZeroGrad();
      nn::Variable q(volume_inputs[i], /*requires_grad=*/false);
      nn::Variable v = model_->SpeedFromVolume(q);
      nn::Variable v_norm = nn::ScalarMul(v, 1.0f / static_cast<float>(speed_scale));
      nn::Variable loss = nn::MseLoss(v_norm, speed_targets[i]);
      loss.Backward();
      opt.ClipGrad(config_.grad_clip);
      opt.Step();
      epoch_loss += loss.value()[0];
    }
    const double mean_loss = epoch_loss / volume_inputs.size();
    if (!guard.EpochHealthy(mean_loss, model_->volume_speed())) {
      ASSIGN_OR_RETURN(
          const TrainGuard::Rollback rb,
          guard.TryRollback(&model_->volume_speed(), &opt, /*rng=*/nullptr));
      curve.resize(static_cast<size_t>(rb.epoch - start_epoch));
      epoch = rb.epoch;
      continue;
    }
    curve.push_back(mean_loss);
    guard.Snapshot(epoch + 1, mean_loss, model_->volume_speed(), opt,
                   /*rng_state=*/"");
    OVS_COUNTER_INC("trainer.stage1.epochs");
    OVS_GAUGE_SET("trainer.stage1.loss", curve.back());
    OVS_HISTOGRAM_OBSERVE("trainer.stage1.epoch_loss", curve.back(), 1e-4,
                          1e-3, 1e-2, 0.1, 1.0, 10.0);
    OVS_TRACE_COUNTER("trainer.stage1.loss", curve.back());
    if (config_.verbose && epoch % 20 == 0) {
      LOG(INFO) << "stage1 epoch " << epoch << " loss " << curve.back();
    }
    if (ck.enabled() && ShouldCheckpoint(epoch, config_.stage1_epochs, ck.every)) {
      const Status saved = SaveTrainerCheckpoint(
          MakeStageCheckpoint("stage1", epoch + 1, curve.back(),
                              model_->volume_speed(), opt, /*rng_state=*/""),
          ckpt_path);
      if (!saved.ok()) {
        LOG(ERROR) << "stage1 checkpoint failed: " << saved.ToString();
      }
    }
    ++epoch;
  }
  return curve;
}

void OvsTrainer::PrimeRecoveryPrior(const TrainingData& data) {
  CHECK(!data.samples.empty());
  // The Gaussian prior for recovery is the training TOD cell mean.
  double cell_sum = 0.0;
  long cell_count = 0;
  for (const TrainingSample& s : data.samples) {
    cell_sum += s.tod.mat().Sum();
    cell_count += s.tod.mat().numel();
  }
  prior_cell_mean_ = cell_count > 0 ? cell_sum / cell_count : 0.0;
  sample_speed_levels_.clear();
  for (const TrainingSample& s : data.samples) {
    sample_speed_levels_.emplace_back(s.speed, s.tod.mat().Mean());
  }
}

StatusOr<std::vector<double>> OvsTrainer::TrainTodVolume(
    const TrainingData& data) {
  CHECK(!data.samples.empty());
  const double speed_scale = model_->config().speed_scale;
  const double volume_norm = model_->config().volume_norm;

  PrimeRecoveryPrior(data);

  std::vector<nn::Tensor> tod_inputs;
  std::vector<nn::Tensor> speed_targets;
  std::vector<nn::Tensor> volume_targets;
  for (const TrainingSample& s : data.samples) {
    tod_inputs.push_back(nn::FromDMat(s.tod.mat()));
    speed_targets.push_back(NormalizedTarget(s.speed, speed_scale));
    volume_targets.push_back(NormalizedTarget(s.volume, volume_norm));
  }

  // Paper §V-E step 2: V2S is frozen; gradients flow through it into TOD2V.
  model_->volume_speed().SetTrainable(false);
  OVS_TRACE_SCOPE("trainer.stage2");
  nn::Adam opt(model_->tod_volume().Parameters(), config_.lr);
  std::vector<double> curve;
  curve.reserve(config_.stage2_epochs);

  const CheckpointOptions& ck = config_.checkpoint;
  const std::string ckpt_path = ck.dir + "/stage2.ckpt";
  int start_epoch = 0;
  double resumed_loss = 0.0;
  if (ck.enabled() && ck.resume) {
    // Stage 2 consumes dropout_rng_; the checkpoint carries its stream so a
    // resumed run draws the same dropout masks as an uninterrupted one.
    start_epoch = TryResumeStage(ck, "stage2", &model_->tod_volume(), &opt,
                                 &dropout_rng_, &resumed_loss);
    if (start_epoch > config_.stage2_epochs) start_epoch = config_.stage2_epochs;
    if (start_epoch > 0 && start_epoch >= config_.stage2_epochs) {
      curve.push_back(resumed_loss);
    }
  }
  // The stage-2 guard also snapshots/restores the dropout RNG stream, so a
  // rolled-back epoch redraws exactly the masks it saw the first time.
  TrainGuard guard("stage2", config_.guard, config_.lr);
  guard.Snapshot(start_epoch, resumed_loss, model_->tod_volume(), opt,
                 dropout_rng_.SaveState());
  for (int epoch = start_epoch; epoch < config_.stage2_epochs;) {
    OVS_TRACE_SCOPE("trainer.stage2.epoch");
    double epoch_loss = 0.0;
    for (size_t i = 0; i < tod_inputs.size(); ++i) {
      opt.ZeroGrad();
      nn::Variable g(tod_inputs[i], /*requires_grad=*/false);
      nn::Variable q = model_->VolumeFromTod(g, /*train=*/true, &dropout_rng_);
      nn::Variable v = model_->SpeedFromVolume(q);
      nn::Variable v_norm = nn::ScalarMul(v, 1.0f / static_cast<float>(speed_scale));
      nn::Variable loss = nn::MseLoss(v_norm, speed_targets[i]);
      if (config_.stage2_volume_weight > 0.0f) {
        nn::Variable q_norm =
            nn::ScalarMul(q, 1.0f / static_cast<float>(volume_norm));
        loss = nn::Add(loss, nn::ScalarMul(nn::MseLoss(q_norm, volume_targets[i]),
                                           config_.stage2_volume_weight));
      }
      loss.Backward();
      opt.ClipGrad(config_.grad_clip);
      opt.Step();
      epoch_loss += loss.value()[0];
    }
    const double mean_loss = epoch_loss / tod_inputs.size();
    if (!guard.EpochHealthy(mean_loss, model_->tod_volume())) {
      StatusOr<TrainGuard::Rollback> rb =
          guard.TryRollback(&model_->tod_volume(), &opt, &dropout_rng_);
      if (!rb.ok()) {
        model_->volume_speed().SetTrainable(true);
        return rb.status();
      }
      curve.resize(static_cast<size_t>(rb->epoch - start_epoch));
      epoch = rb->epoch;
      continue;
    }
    curve.push_back(mean_loss);
    guard.Snapshot(epoch + 1, mean_loss, model_->tod_volume(), opt,
                   dropout_rng_.SaveState());
    OVS_COUNTER_INC("trainer.stage2.epochs");
    OVS_GAUGE_SET("trainer.stage2.loss", curve.back());
    OVS_HISTOGRAM_OBSERVE("trainer.stage2.epoch_loss", curve.back(), 1e-4,
                          1e-3, 1e-2, 0.1, 1.0, 10.0);
    OVS_TRACE_COUNTER("trainer.stage2.loss", curve.back());
    if (config_.verbose && epoch % 20 == 0) {
      LOG(INFO) << "stage2 epoch " << epoch << " loss " << curve.back();
    }
    if (ck.enabled() && ShouldCheckpoint(epoch, config_.stage2_epochs, ck.every)) {
      const Status saved = SaveTrainerCheckpoint(
          MakeStageCheckpoint("stage2", epoch + 1, curve.back(),
                              model_->tod_volume(), opt,
                              dropout_rng_.SaveState()),
          ckpt_path);
      if (!saved.ok()) {
        LOG(ERROR) << "stage2 checkpoint failed: " << saved.ToString();
      }
    }
    ++epoch;
  }
  model_->volume_speed().SetTrainable(true);
  return curve;
}

StatusOr<od::TodTensor> OvsTrainer::RecoverTod(const DMat& observed_speed,
                                               const AuxLossSet* aux,
                                               Rng* rng) {
  OVS_TRACE_SCOPE("trainer.recover");
  OVS_SCOPED_DURATION_GAUGE("trainer.recover.seconds");
  OVS_COUNTER_INC("trainer.recoveries");
  const double speed_scale = model_->config().speed_scale;

  // Validate up front, before any state is touched: restarts beyond the
  // first re-draw their seeds, which is impossible without an RNG. This
  // used to be a CHECK deep inside restart setup — a crash on a plain
  // configuration mistake.
  const int restarts = std::max(1, config_.recovery_restarts);
  if (restarts > 1 && rng == nullptr) {
    return Status::InvalidArgument(
        std::to_string(restarts) +
        " recovery restarts require an RNG to resample seeds; pass one or "
        "set recovery_restarts <= 1");
  }

  // Observation-validity mask: real feeds have dark links and dead cells
  // (NaN). With mask_observations those cells are excluded from the loss
  // and the prior's kernel regression; without it they are read literally
  // as 0 m/s — the garbage-in reference the masked path is tested against.
  const int invalid_cells = sim::CountInvalidCells(observed_speed);
  const int total_cells = observed_speed.rows() * observed_speed.cols();
  if (invalid_cells >= total_cells) {
    return Status::InvalidArgument(
        "observed speed has no finite cells (" +
        std::to_string(total_cells) + " invalid)");
  }
  const bool masked = config_.mask_observations && invalid_cells > 0;
  const DMat obs_mask = sim::ObservationMask(observed_speed);
  const DMat observed_filled =
      invalid_cells > 0 ? sim::FillInvalidCells(observed_speed, 0.0)
                        : observed_speed;
  OVS_GAUGE_SET("trainer.recover.invalid_cells",
                static_cast<double>(invalid_cells));
  nn::Tensor target = NormalizedTarget(observed_filled, speed_scale);
  nn::Tensor obs_mask_t;
  if (masked) obs_mask_t = nn::FromDMat(obs_mask);

  // Adapt the Gaussian-prior level to the observed speed: kernel-weighted
  // average of the generated samples' demand levels, weighted by how close
  // their simulated speed profile is to the observation. Uses only the
  // generated training data — the ground truth TOD is never touched.
  double adapted_prior = prior_cell_mean_;
  if (!sample_speed_levels_.empty()) {
    // Distance = median over links of per-link speed RMSE. The median makes
    // the level estimate robust to a few exogenously slowed links (road
    // work, accidents — paper RQ3), which a full-tensor RMSE would read as
    // globally heavier demand. Under masking, invalid observation cells are
    // skipped and fully dark links drop out of the median entirely.
    auto robust_distance = [&](const DMat& speed) {
      std::vector<double> per_link;
      per_link.reserve(speed.rows());
      for (int l = 0; l < speed.rows(); ++l) {
        double acc = 0.0;
        int valid = 0;
        for (int t = 0; t < speed.cols(); ++t) {
          if (masked && obs_mask.at(l, t) == 0.0) continue;
          const double d = speed.at(l, t) - observed_filled.at(l, t);
          acc += d * d;
          ++valid;
        }
        if (valid == 0) continue;
        per_link.push_back(std::sqrt(acc / valid));
      }
      std::nth_element(per_link.begin(), per_link.begin() + per_link.size() / 2,
                       per_link.end());
      return per_link[per_link.size() / 2];
    };
    std::vector<double> dists;
    dists.reserve(sample_speed_levels_.size());
    double min_d = 1e30;
    for (const auto& [speed, level] : sample_speed_levels_) {
      const double d = robust_distance(speed);
      dists.push_back(d);
      min_d = std::min(min_d, d);
    }
    std::vector<double> sorted = dists;
    // Sorting raw doubles: equal keys are indistinguishable values, so the
    // unstable tie order cannot change the selected median.
    std::sort(sorted.begin(), sorted.end());  // ovs-lint: allow(nonstable-sort)
    const double median_d = sorted[sorted.size() / 2];
    const double bandwidth = std::max({0.1, min_d, 0.5 * median_d});
    double w_sum = 0.0, level_sum = 0.0;
    for (size_t i = 0; i < dists.size(); ++i) {
      const double w =
          std::exp(-0.5 * (dists[i] / bandwidth) * (dists[i] / bandwidth));
      w_sum += w;
      level_sum += w * sample_speed_levels_[i].second;
    }
    if (w_sum > 1e-12) adapted_prior = level_sum / w_sum;
  }

  // Gaussian-prior anchor in normalized TOD units (see TrainerConfig).
  nn::Tensor prior_mean({model_->num_od(), model_->num_intervals()});
  prior_mean.Fill(
      static_cast<float>(adapted_prior / model_->config().tod_scale));

  // Freeze the learned mappings; only TOD Generation moves.
  model_->tod_volume().SetTrainable(false);
  model_->volume_speed().SetTrainable(false);

  // Start the decoder at the Gaussian prior mean so directions the speed
  // loss cannot see stay at the prior instead of the sigmoid midpoint.
  const float prior_fraction =
      adapted_prior > 0.0
          ? std::clamp(static_cast<float>(adapted_prior /
                                          model_->config().tod_scale),
                       0.05f, 0.9f)
          : 0.3f;

  // Restarts are fitted concurrently, each on its own generator instance
  // starting from the pre-recovery decoder weights. Determinism across
  // thread counts: the per-restart seed tensors are drawn serially here (so
  // RNG consumption never depends on scheduling), every restart's fit is a
  // self-contained serial computation, and the winner is picked by loss
  // with the lowest restart index breaking ties. Restart 0 keeps the
  // generator's current seeds, so a 1-restart recovery reproduces the
  // original serial path exactly.
  std::vector<std::unique_ptr<TodGeneratorIface>> generators(restarts);
  for (int restart = 0; restart < restarts; ++restart) {
    Rng scratch_init(1);  // weights and seeds are overwritten below
    generators[restart] = model_->MakeTodGenerator(&scratch_init);
    generators[restart]->CopyParametersFrom(model_->tod_generation());
    if (restart == 0) {
      generators[restart]->set_seeds(model_->tod_generation().seeds());
    } else {
      nn::Tensor seeds = model_->tod_generation().seeds();
      generators[restart]->set_seeds(
          nn::Tensor::RandomGaussian(seeds.shape(), 0.0f, 1.0f, rng));
    }
  }

  std::vector<double> losses(restarts,
                             std::numeric_limits<double>::infinity());

  // Checkpoint/resume at restart granularity: each finished restart persists
  // its generator state, seeds, and loss; a resumed recovery skips those
  // fits entirely. The per-restart seeds above are still drawn serially for
  // every restart regardless, so RNG consumption — and any later draw from
  // `rng` — is identical with and without a resume.
  const CheckpointOptions& ck = config_.checkpoint;
  auto restart_stage = [](int64_t restart) {
    return "recovery.restart" + std::to_string(restart);
  };
  auto restart_path = [&](int64_t restart) {
    return ck.dir + "/" + restart_stage(restart) + ".ckpt";
  };
  std::vector<char> restored(restarts, 0);
  if (ck.enabled() && ck.resume) {
    for (int restart = 0; restart < restarts; ++restart) {
      StatusOr<TrainerCheckpoint> loaded =
          LoadTrainerCheckpoint(restart_path(restart));
      if (!loaded.ok()) {
        if (loaded.status().code() != StatusCode::kNotFound) {
          LOG(ERROR) << "ignoring unusable checkpoint "
                     << restart_path(restart) << ": "
                     << loaded.status().ToString();
        }
        continue;
      }
      if (loaded->stage != restart_stage(restart)) {
        LOG(ERROR) << "checkpoint " << restart_path(restart)
                   << " is for stage '" << loaded->stage << "'; refitting";
        continue;
      }
      const nn::Tensor* seeds = nullptr;
      for (const auto& [name, t] : loaded->tensors) {
        if (name == "seeds") seeds = &t;
      }
      if (seeds == nullptr ||
          !seeds->SameShape(model_->tod_generation().seeds())) {
        LOG(ERROR) << "checkpoint " << restart_path(restart)
                   << " has missing or mismatched seeds; refitting";
        continue;
      }
      const Status status =
          RestoreModuleParameters(*loaded, generators[restart].get());
      if (!status.ok()) {
        LOG(ERROR) << "cannot resume restart " << restart << ": "
                   << status.ToString();
        // Reset to the pre-recovery decoder weights so the refit below is
        // indistinguishable from a never-checkpointed run.
        generators[restart]->CopyParametersFrom(model_->tod_generation());
        continue;
      }
      generators[restart]->set_seeds(*seeds);
      losses[restart] = loaded->loss;
      restored[restart] = 1;
      LOG(INFO) << "resumed recovery restart " << restart << " (loss "
                << loaded->loss << ")";
    }
  }

  std::vector<Status> save_statuses(restarts);
  std::vector<Status> fit_statuses(restarts);

  // External deadline/cancel control, polled once per epoch next to the
  // guard. The first non-OK poll stops every restart; partially fitted
  // state is discarded and the control's status propagates to the caller.
  std::atomic<bool> ctl_stop{false};
  std::mutex ctl_mutex;
  Status ctl_status;  // first non-OK poll; guarded by ctl_mutex
  auto poll_control = [&]() {
    if (config_.run_control == nullptr) return true;
    if (ctl_stop.load(std::memory_order_relaxed)) return false;
    Status ctl = config_.run_control->Poll();
    if (ctl.ok()) return true;
    {
      std::lock_guard<std::mutex> lock(ctl_mutex);
      if (ctl_status.ok()) ctl_status = std::move(ctl);
    }
    ctl_stop.store(true, std::memory_order_relaxed);
    return false;
  };

  // Recovery loss for one restart's (g, q, v) triple. Shared by the batched
  // and legacy fit paths below so both build the exact same graph per
  // restart — the foundation of their bitwise equivalence.
  auto build_loss = [&](const nn::Variable& g, const nn::Variable& q,
                        const nn::Variable& v) {
    nn::Variable v_norm =
        nn::ScalarMul(v, 1.0f / static_cast<float>(speed_scale));
    // Main loss, Eq. 12 (robustified; see TrainerConfig). Masked
    // variants exclude invalid observation cells from value and grad.
    nn::Variable loss =
        config_.recovery_huber_delta > 0.0f
            ? (masked ? nn::MaskedHuberLoss(v_norm, target, obs_mask_t,
                                            config_.recovery_huber_delta)
                      : nn::HuberLoss(v_norm, target,
                                      config_.recovery_huber_delta))
            : (masked ? nn::MaskedMseLoss(v_norm, target, obs_mask_t)
                      : nn::MseLoss(v_norm, target));
    if (aux != nullptr && aux->active()) {
      loss = nn::Add(loss, aux->Compute(g, q, v));  // Eq. 13
    }
    if (config_.recovery_prior_weight > 0.0f) {
      nn::Variable g_norm =
          nn::ScalarMul(g, 1.0f / model_->config().tod_scale);
      loss = nn::Add(loss, nn::ScalarMul(nn::MseLoss(g_norm, prior_mean),
                                         config_.recovery_prior_weight));
    }
    return loss;
  };

  if (config_.batch_restarts) {
    // Batched lockstep fit: every epoch stacks the pending restarts' TOD
    // outputs row-wise and pushes ONE [A*N_od x T] graph through the frozen
    // mappings instead of A separate [N_od x T] graphs. Each restart keeps
    // its own generator, Adam state, and guard; every op in the stacked
    // chain is row-block independent and the frozen mappings receive no
    // gradients, so the numbers each restart sees are bitwise-identical to
    // the legacy restart-at-a-time path — only the kernel shapes grow.
    // Restarts that diverge (guard gives up) or finish drop out of the
    // stack; the rest keep fitting.
    struct RestartFit {
      int id = 0;
      int epoch = 0;
      double final_loss = 0.0;
      std::unique_ptr<nn::Adam> opt;
      std::unique_ptr<TrainGuard> guard;
    };
    std::vector<RestartFit> active;
    active.reserve(restarts);
    for (int restart = 0; restart < restarts; ++restart) {
      // A restored restart skips the whole fit, including the output-level
      // re-initialization — its state already is the post-fit state.
      if (restored[restart]) continue;
      TodGeneratorIface& gen = *generators[restart];
      gen.InitializeOutputLevel(prior_fraction);
      RestartFit fit;
      fit.id = restart;
      fit.opt =
          std::make_unique<nn::Adam>(gen.Parameters(), config_.recovery_lr);
      fit.guard = std::make_unique<TrainGuard>(
          restart_stage(restart), config_.guard, config_.recovery_lr);
      fit.guard->Snapshot(0, std::numeric_limits<double>::infinity(), gen,
                          *fit.opt, /*rng_state=*/"");
      active.push_back(std::move(fit));
    }
    const int num_links = model_->num_links();
    while (!active.empty()) {
      // Retire finished restarts first, so the epoch below only stacks
      // restarts still fitting (and recovery_epochs == 0 works).
      std::vector<RestartFit> pending;
      pending.reserve(active.size());
      for (RestartFit& fit : active) {
        if (fit.epoch < config_.recovery_epochs) {
          pending.push_back(std::move(fit));
          continue;
        }
        TodGeneratorIface& gen = *generators[fit.id];
        losses[fit.id] = fit.final_loss;
        obs::SetGaugeDynamic(
            "trainer.recover.restart_loss." + std::to_string(fit.id),
            fit.final_loss);
        OVS_COUNTER_INC("trainer.recover.restarts");
        if (ck.enabled()) {
          TrainerCheckpoint ckpt;
          ckpt.stage = restart_stage(fit.id);
          ckpt.epoch = config_.recovery_epochs;
          ckpt.loss = fit.final_loss;
          for (const auto& [name, v] : gen.NamedParameters()) {
            ckpt.tensors.emplace_back(name, v.value());
          }
          ckpt.tensors.emplace_back("seeds", gen.seeds());
          save_statuses[fit.id] =
              SaveTrainerCheckpoint(ckpt, restart_path(fit.id));
        }
      }
      active = std::move(pending);
      if (active.empty()) break;
      if (!poll_control()) break;

      OVS_TRACE_SCOPE("trainer.recover.batched_epoch");
      const int blocks = static_cast<int>(active.size());
      for (RestartFit& fit : active) fit.opt->ZeroGrad();
      std::vector<nn::Variable> gs;
      gs.reserve(active.size());
      for (RestartFit& fit : active) {
        gs.push_back(generators[fit.id]->Forward());
      }
      nn::Variable g_all = blocks == 1 ? gs[0] : nn::ConcatRows(gs);
      nn::Variable q_all = model_->VolumeFromTodBatched(
          g_all, blocks, /*train=*/false, nullptr);
      nn::Variable v_all = model_->SpeedFromVolumeBatched(q_all, blocks);
      std::vector<nn::Variable> block_losses;
      block_losses.reserve(active.size());
      for (int i = 0; i < blocks; ++i) {
        nn::Variable q_i = blocks == 1
                               ? q_all
                               : nn::SliceRows(q_all, i * num_links, num_links);
        nn::Variable v_i = blocks == 1
                               ? v_all
                               : nn::SliceRows(v_all, i * num_links, num_links);
        block_losses.push_back(build_loss(gs[i], q_i, v_i));
      }
      // One backward over the summed per-restart losses. Add passes the
      // seed gradient 1 through unchanged, and restart subgraphs only meet
      // at the (gradient-transparent) concat/slice pair, so each restart's
      // parameters see exactly the gradients its solo backward produces.
      nn::Variable total = block_losses[0];
      for (int i = 1; i < blocks; ++i) {
        total = nn::Add(total, block_losses[i]);
      }
      total.Backward();
      for (int i = 0; i < blocks; ++i) {
        RestartFit& fit = active[static_cast<size_t>(i)];
        fit.opt->ClipGrad(config_.grad_clip);
        fit.opt->Step();
        fit.final_loss = block_losses[i].value()[0];
      }
      // Guard verdicts in ascending restart order, exactly as the legacy
      // per-restart loop applies them.
      std::vector<RestartFit> healthy;
      healthy.reserve(active.size());
      for (RestartFit& fit : active) {
        TodGeneratorIface& gen = *generators[fit.id];
        if (!fit.guard->EpochHealthy(fit.final_loss, gen)) {
          StatusOr<TrainGuard::Rollback> rb =
              fit.guard->TryRollback(&gen, fit.opt.get(), /*rng=*/nullptr);
          if (!rb.ok()) {
            // Out of the running: losses[id] stays +inf and no checkpoint
            // of the broken state is written.
            fit_statuses[fit.id] = rb.status();
            OVS_COUNTER_INC("trainer.recover.diverged_restarts");
            continue;
          }
          fit.epoch = rb->epoch;
          healthy.push_back(std::move(fit));
          continue;
        }
        fit.guard->Snapshot(fit.epoch + 1, fit.final_loss, gen, *fit.opt,
                            /*rng_state=*/"");
        if (config_.verbose && fit.epoch % 50 == 0) {
          LOG(INFO) << "recovery restart " << fit.id << " epoch " << fit.epoch
                    << " loss " << fit.final_loss;
        }
        ++fit.epoch;
        healthy.push_back(std::move(fit));
      }
      active = std::move(healthy);
    }
  } else {
  // The frozen TOD2V/V2S mappings are shared read-only across restart
  // threads; backward never touches frozen leaves, so no synchronization is
  // needed.
  ParallelFor(0, restarts, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t restart = lo; restart < hi; ++restart) {
      // A restored restart skips the whole fit, including the output-level
      // re-initialization — its state already is the post-fit state.
      if (restored[restart]) continue;
      OVS_TRACE_SCOPE("trainer.recover.restart");
      OVS_SCOPED_DURATION_GAUGE("trainer.recover.restart_seconds." +
                                std::to_string(restart));
      TodGeneratorIface& gen = *generators[restart];
      gen.InitializeOutputLevel(prior_fraction);
      nn::Adam opt(gen.Parameters(), config_.recovery_lr);
      // Each restart owns a private guard, so fits stay self-contained
      // serial computations and the thread count cannot change behavior.
      TrainGuard guard(restart_stage(restart), config_.guard,
                       config_.recovery_lr);
      guard.Snapshot(0, std::numeric_limits<double>::infinity(), gen, opt,
                     /*rng_state=*/"");
      double final_loss = 0.0;
      bool diverged = false;
      for (int epoch = 0; epoch < config_.recovery_epochs;) {
        if (!poll_control()) break;
        opt.ZeroGrad();
        nn::Variable g = gen.Forward();
        nn::Variable q = model_->VolumeFromTod(g, /*train=*/false, nullptr);
        nn::Variable v = model_->SpeedFromVolume(q);
        nn::Variable loss = build_loss(g, q, v);
        loss.Backward();
        opt.ClipGrad(config_.grad_clip);
        opt.Step();
        final_loss = loss.value()[0];
        if (!guard.EpochHealthy(final_loss, gen)) {
          StatusOr<TrainGuard::Rollback> rb =
              guard.TryRollback(&gen, &opt, /*rng=*/nullptr);
          if (!rb.ok()) {
            fit_statuses[restart] = rb.status();
            diverged = true;
            break;
          }
          epoch = rb->epoch;
          continue;
        }
        guard.Snapshot(epoch + 1, final_loss, gen, opt, /*rng_state=*/"");
        if (config_.verbose && epoch % 50 == 0) {
          LOG(INFO) << "recovery restart " << restart << " epoch " << epoch
                    << " loss " << final_loss;
        }
        ++epoch;
      }
      if (diverged) {
        // losses[restart] stays +inf: the restart is out of the running and
        // no checkpoint of its broken state is written.
        OVS_COUNTER_INC("trainer.recover.diverged_restarts");
        continue;
      }
      // A control abort discards the partial fit: no loss, no checkpoint.
      if (ctl_stop.load(std::memory_order_relaxed)) continue;
      losses[restart] = final_loss;
      obs::SetGaugeDynamic(
          "trainer.recover.restart_loss." + std::to_string(restart),
          final_loss);
      OVS_COUNTER_INC("trainer.recover.restarts");
      if (ck.enabled()) {
        TrainerCheckpoint ckpt;
        ckpt.stage = restart_stage(restart);
        ckpt.epoch = config_.recovery_epochs;
        ckpt.loss = final_loss;
        for (const auto& [name, v] : gen.NamedParameters()) {
          // ovs-lint: allow(alloc-in-parallel) — once-per-restart checkpoint
          ckpt.tensors.emplace_back(name, v.value());
        }
        // ovs-lint: allow(alloc-in-parallel) — once-per-restart checkpoint
        ckpt.tensors.emplace_back("seeds", gen.seeds());
        save_statuses[restart] = SaveTrainerCheckpoint(ckpt, restart_path(restart));
      }
    }
  });
  }
  if (ctl_stop.load(std::memory_order_relaxed)) {
    model_->tod_volume().SetTrainable(true);
    model_->volume_speed().SetTrainable(true);
    OVS_COUNTER_INC("trainer.recover.control_aborts");
    std::lock_guard<std::mutex> lock(ctl_mutex);
    return ctl_status;
  }
  for (int restart = 0; restart < restarts; ++restart) {
    if (!save_statuses[restart].ok()) {
      LOG(ERROR) << "recovery restart " << restart
                 << " checkpoint failed: " << save_statuses[restart].ToString();
    }
  }

  int best = 0;
  for (int restart = 1; restart < restarts; ++restart) {
    if (losses[restart] < losses[best]) best = restart;
  }
  if (!std::isfinite(losses[best])) {
    // Every restart diverged (or ended non-finite with the guard off):
    // surface an error instead of adopting garbage weights.
    model_->tod_volume().SetTrainable(true);
    model_->volume_speed().SetTrainable(true);
    for (int restart = 0; restart < restarts; ++restart) {
      if (!fit_statuses[restart].ok()) return fit_statuses[restart];
    }
    return Status::Internal("all " + std::to_string(restarts) +
                            " recovery restarts ended with non-finite loss");
  }
  for (int restart = 0; restart < restarts; ++restart) {
    if (!fit_statuses[restart].ok()) {
      LOG(WARNING) << "recovery restart " << restart
                   << " dropped: " << fit_statuses[restart].ToString();
    }
  }
  // Adopt the winner: the model's generator carries the best restart's
  // state, as if that restart had been the only (serial) fit.
  model_->tod_generation().CopyParametersFrom(*generators[best]);
  model_->tod_generation().set_seeds(generators[best]->seeds());
  nn::Tensor best_tod = model_->GenerateTod().value();

  model_->tod_volume().SetTrainable(true);
  model_->volume_speed().SetTrainable(true);
  last_recovery_loss_ = losses[best];
  OVS_GAUGE_SET("trainer.recover.best_loss", losses[best]);
  OVS_GAUGE_SET("trainer.recover.best_restart", static_cast<double>(best));
  return od::TodTensor(nn::ToDMat(best_tod));
}

}  // namespace ovs::core
