#ifndef OVS_CORE_ABLATION_H_
#define OVS_CORE_ABLATION_H_

#include "core/interfaces.h"
#include "core/ovs_config.h"
#include "nn/convert.h"
#include "nn/layers.h"
#include "util/mat.h"

namespace ovs::core {

/// Ablation replacements for Table IX: each OVS module swapped for plain
/// fully connected layers ("OVS - TOD", "OVS - TOD2V", "OVS - V2S").

/// "OVS - TOD": the seed decoder becomes a single ReLU FC — no bounded
/// sigmoid structure on the generated TOD.
class FcTodGeneration : public TodGeneratorIface {
 public:
  FcTodGeneration(int num_od, int num_intervals, const OvsConfig& config,
                  Rng* rng);

  nn::Variable Forward() const override;
  void ResampleSeeds(Rng* rng) override;
  const nn::Tensor& seeds() const override { return seeds_; }
  void set_seeds(const nn::Tensor& seeds) override;

 private:
  int num_od_;
  int seed_dim_;
  nn::Tensor seeds_;
  nn::Linear fc_;
};

/// "OVS - TOD2V": the dynamic attention becomes a two-layer static linear
/// OD->link assignment — the classical linear-assignment-matrix assumption
/// the paper argues against.
class FcTodVolume : public TodVolumeIface {
 public:
  FcTodVolume(int num_od, int num_links, const OvsConfig& config, Rng* rng);

  nn::Variable Forward(const nn::Variable& g, bool train,
                       Rng* dropout_rng) const override;

 private:
  nn::Variable w1_;  ///< [M x N_od]
  nn::Variable w2_;  ///< [M x M]
};

/// "OVS - V2S": the shared LSTM becomes two FC layers over the time axis of
/// each link series — no recurrent congestion memory.
class FcVolumeSpeed : public VolumeSpeedIface {
 public:
  FcVolumeSpeed(int num_intervals, const OvsConfig& config, Rng* rng);

  nn::Variable Forward(const nn::Variable& q) const override;

 private:
  OvsConfig config_;
  nn::Linear fc1_;
  nn::Linear fc2_;
};

}  // namespace ovs::core

#endif  // OVS_CORE_ABLATION_H_
