#include "core/tod_volume.h"

#include "obs/trace.h"

namespace ovs::core {

TodVolumeMapping::TodVolumeMapping(int num_od, int num_links, int num_intervals,
                                   const DMat& incidence,
                                   const OvsConfig& config, Rng* rng)
    : num_od_(num_od),
      num_links_(num_links),
      num_intervals_(num_intervals),
      config_(config),
      incidence_(nn::FromDMat(incidence)),
      od_route_(num_intervals, num_intervals, rng),
      conv1_(1, config.conv_channels, config.conv_kernel, rng),
      conv2_(config.conv_channels, config.conv_channels, config.conv_kernel, rng),
      att_fc_(config.conv_channels + config.link_embed_dim,
              config.attention_hidden, rng),
      att_out_(config.attention_hidden, config.lags, rng),
      att_gate_(config.attention_hidden, 1, rng),
      link_embed_(num_links, config.link_embed_dim, rng) {
  CHECK_EQ(incidence.rows(), num_links);
  CHECK_EQ(incidence.cols(), num_od);
  CHECK_GE(config.lags, 1);
  CHECK_LE(config.lags, num_intervals);
  RegisterModule("od_route", &od_route_);
  RegisterModule("conv1", &conv1_);
  RegisterModule("conv2", &conv2_);
  RegisterModule("att_fc", &att_fc_);
  RegisterModule("att_out", &att_out_);
  RegisterModule("att_gate", &att_gate_);
  RegisterModule("link_embed", &link_embed_);

  // Informed initialization. OD-Route: sigmoid(4x - 2) ~= x on (0, 1), so
  // start as an approximate identity (routes initially carry their OD's
  // counts unchanged). Attention: bias the lag-0 logit so volume initially
  // arrives within its departure interval; both biases are learnable.
  {
    auto named = od_route_.NamedParameters();
    for (auto& [name, v] : named) {
      if (name == "weight") {
        v.mutable_value().Fill(0.0f);
        for (int t = 0; t < num_intervals; ++t) {
          v.mutable_value().at(t, t) = 4.0f;
        }
      } else if (name == "bias") {
        v.mutable_value().Fill(-2.0f);
      }
    }
    auto att_named = att_out_.NamedParameters();
    for (auto& [name, v] : att_named) {
      if (name == "bias") v.mutable_value()[0] = 2.0f;
    }
    auto gate_named = att_gate_.NamedParameters();
    for (auto& [name, v] : gate_named) {
      if (name == "bias") v.mutable_value()[0] = 2.0f;  // gate ~= 0.88
    }
  }
}

TodVolumeMapping::AttentionParts TodVolumeMapping::ComputeAttention(
    const nn::Variable& g, int blocks, bool train, Rng* dropout_rng) const {
  CHECK_GE(blocks, 1);
  CHECK_EQ(g.value().dim(0), blocks * num_od_);
  CHECK_EQ(g.value().dim(1), num_intervals_);

  // Eq. 3: route trip counts from OD trip counts. Work in normalized units
  // so the sigmoid has slope, then restore trip units. Row-independent, so
  // stacking blocks of ODs changes nothing per row.
  nn::Variable g_norm = nn::ScalarMul(g, 1.0f / config_.tod_scale);
  nn::Variable p_norm = nn::Sigmoid(od_route_.Forward(g_norm));
  nn::Variable p = nn::ScalarMul(p_norm, config_.tod_scale);

  // Eqs. 5-6: two 1x3 convs over each route's time series (item-independent).
  nn::Variable p_seq =
      nn::Reshape(p_norm, {blocks * num_od_, 1, num_intervals_});
  nn::Variable h1 = nn::Relu(conv1_.Forward(p_seq));
  nn::Variable h2 = nn::Relu(conv2_.Forward(h1));

  // Eq. 7: aggregate route representations into a system embedding e —
  // one [C x T] row band per block, each the mean over that block's ODs.
  nn::Variable e =
      nn::ScalarMul(nn::SumBatchBlocks(h2, blocks), 1.0f / num_od_);

  // Eq. 8: attention over lags, conditioned on (e_t, link embedding).
  nn::Variable att_in =
      nn::BatchedBuildAttentionInput(e, link_embed_.Table(), blocks);
  nn::Variable att_h = nn::Relu(att_fc_.Forward(att_in));
  if (train && config_.dropout > 0.0f) {
    att_h = nn::Dropout(att_h, config_.dropout, /*train=*/true, dropout_rng);
  }
  nn::Variable alpha = nn::SoftmaxRows(att_out_.Forward(att_h));
  nn::Variable gate = nn::Sigmoid(att_gate_.Forward(att_h));
  return {p, alpha, gate};
}

nn::Variable TodVolumeMapping::Forward(const nn::Variable& g, bool train,
                                       Rng* dropout_rng) const {
  return ForwardBatched(g, /*blocks=*/1, train, dropout_rng);
}

nn::Variable TodVolumeMapping::ForwardBatched(const nn::Variable& g,
                                              int blocks, bool train,
                                              Rng* dropout_rng) const {
  OVS_TRACE_SCOPE("tod_volume.forward");
  AttentionParts parts = ComputeAttention(g, blocks, train, dropout_rng);
  // Route->link aggregation with the fixed incidence (the set N_j^(r)),
  // applied block-diagonally: block r of routes feeds block r of links.
  nn::Variable s = nn::BatchedFixedMatMul(incidence_, parts.route_counts,
                                          blocks);
  // Eq. 4: lag-attention-weighted combination. The gate attenuates mass the
  // simulator loses to residual queues (trips still en-route at the horizon
  // or waiting to enter) — softmax alone conserves mass and cannot.
  // LagAttentionApply treats every (link, t) row independently, so the
  // stacked [blocks*M x T] layout batches for free.
  nn::Variable q = nn::LagAttentionApply(parts.alpha, s, config_.lags);
  nn::Variable gate =
      nn::Reshape(parts.gate, {blocks * num_links_, num_intervals_});
  return nn::Mul(gate, q);
}

nn::Variable TodVolumeMapping::AttentionFor(const nn::Variable& g) const {
  return ComputeAttention(g, /*blocks=*/1, /*train=*/false, nullptr).alpha;
}

}  // namespace ovs::core
