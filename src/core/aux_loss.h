#ifndef OVS_CORE_AUX_LOSS_H_
#define OVS_CORE_AUX_LOSS_H_

#include <vector>

#include "nn/ops.h"
#include "util/mat.h"

namespace ovs::core {

/// Weights w_g, w_q, w_v of the paper's Eq. 13. Zero disables a term.
struct AuxLossWeights {
  float census = 0.0f;       ///< TOD-level (LEHD / census), w_g
  float camera = 0.0f;       ///< volume-level (surveillance cameras), w_q
  float speed_limit = 0.0f;  ///< speed-level (roadnet limits), w_v
};

/// Auxiliary loss terms (paper §IV-E, Table II) that prune infeasible TOD
/// solutions. All comparisons happen in normalized units so the weights are
/// scale-free. Construct, attach the feeds you have, then Compute() inside
/// the recovery loop.
class AuxLossSet {
 public:
  explicit AuxLossSet(AuxLossWeights weights) : weights_(weights) {}

  /// LEHD-style constraint: sum_t g[i, t] should match `od_totals[i]`
  /// (paper's l_aux^1). `tod_scale` and T normalize the comparison.
  void SetCensusTargets(const std::vector<double>& od_totals, double tod_scale,
                        int num_intervals);

  /// Camera constraint: predicted volume on `links` should match `observed`
  /// ([links.size() x T], vehicles/interval).
  void SetCameraObservations(const std::vector<int>& links, const DMat& observed,
                             double volume_norm);

  /// Speed-limit constraint: predicted speed may not exceed the per-link
  /// limit (one-sided hinge).
  void SetSpeedLimits(const std::vector<double>& limits_mps, int num_intervals,
                      double speed_scale);

  /// Weighted sum of the active terms, given stage outputs g [N_od x T],
  /// q [M x T], v [M x T]. Returns a scalar Variable (0 when inactive).
  nn::Variable Compute(const nn::Variable& g, const nn::Variable& q,
                       const nn::Variable& v) const;

  bool active() const {
    return has_census_ || has_camera_ || has_speed_limit_;
  }

  const AuxLossWeights& weights() const { return weights_; }

 private:
  AuxLossWeights weights_;

  bool has_census_ = false;
  nn::Tensor census_target_norm_;  // [N_od x 1]
  float census_scale_ = 1.0f;      // divides SumCols(g)

  bool has_camera_ = false;
  std::vector<int> camera_links_;
  nn::Tensor camera_target_norm_;  // [K x T]
  float camera_scale_ = 1.0f;

  bool has_speed_limit_ = false;
  nn::Tensor speed_limit_norm_;  // [M x T]
  float speed_scale_ = 1.0f;
};

}  // namespace ovs::core

#endif  // OVS_CORE_AUX_LOSS_H_
