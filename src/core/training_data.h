#ifndef OVS_CORE_TRAINING_DATA_H_
#define OVS_CORE_TRAINING_DATA_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "od/tod_tensor.h"
#include "util/mat.h"

namespace ovs::core {

/// One simulator-generated triple (paper §V-D): a TOD tensor and the volume
/// and speed tensors the simulator produced from it.
struct TrainingSample {
  od::TodTensor tod;  ///< [N_od x T]
  DMat volume;        ///< [M x T]
  DMat speed;         ///< [M x T], m/s
};

/// A generated training set plus the normalization scales derived from it.
struct TrainingData {
  std::vector<TrainingSample> samples;
  double tod_scale = 1.0;
  double volume_norm = 1.0;
  double speed_scale = 1.0;
};

/// Implements the paper's data-preprocess protocol (Fig. 7, training stage):
/// generate `num_samples` TOD tensors (each 20% slice follows one of the
/// five patterns, scaled to the dataset's demand level), push each through
/// the microscopic simulator, and collect (TOD, volume, speed).
TrainingData GenerateTrainingData(const data::Dataset& dataset, int num_samples,
                                  uint64_t seed);

/// The paper's testing-stage protocol: simulate the ground-truth TOD and
/// return its (volume, speed) as the hidden ground truth.
TrainingSample SimulateGroundTruth(const data::Dataset& dataset, uint64_t seed);

/// Simulates an arbitrary TOD tensor on the dataset's network — the
/// `TOD -> (volume, speed)` oracle used for evaluation and search baselines.
TrainingSample SimulateTod(const data::Dataset& dataset,
                           const od::TodTensor& tod, uint64_t seed,
                           const std::vector<sim::RoadWork>& works = {});

}  // namespace ovs::core

#endif  // OVS_CORE_TRAINING_DATA_H_
