#include "core/train_guard.h"

#include <cmath>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ovs::core {

TrainGuard::TrainGuard(std::string stage, const TrainGuardOptions& options,
                       float initial_lr)
    : stage_(std::move(stage)), options_(options), lr_(initial_lr) {}

void TrainGuard::Snapshot(int epoch, double loss, const nn::Module& module,
                          const nn::Adam& opt, std::string rng_state) {
  if (!options_.enabled) return;
  snapshot_ = TrainerCheckpoint();
  snapshot_.stage = stage_;
  snapshot_.epoch = epoch;
  snapshot_.loss = loss;
  snapshot_.rng_state = std::move(rng_state);
  for (const auto& [name, v] : module.NamedParameters()) {
    snapshot_.tensors.emplace_back(name, v.value());
  }
  AppendAdamState(opt, &snapshot_);
  has_snapshot_ = true;
}

bool TrainGuard::EpochHealthy(double loss, const nn::Module& module) {
  if (!options_.enabled) return true;
  const int check = checks_++;
  if (options_.fault_at_check >= 0 && check >= options_.fault_at_check &&
      check < options_.fault_at_check + options_.fault_count) {
    return false;
  }
  if (!std::isfinite(loss)) return false;
  for (const nn::Variable& p : module.Parameters()) {
    if (!p.value().AllFinite()) return false;
  }
  return true;
}

StatusOr<TrainGuard::Rollback> TrainGuard::TryRollback(nn::Module* module,
                                                       nn::Adam* opt,
                                                       Rng* rng) {
  CHECK(module != nullptr);
  CHECK(opt != nullptr);
  CHECK(has_snapshot_) << "TrainGuard::Snapshot must precede the epoch loop";
  if (retries_ >= options_.max_retries) {
    return Status::Internal(
        stage_ + " diverged after " + std::to_string(retries_) +
        " rollback retries (last lr " + std::to_string(lr_) + ")");
  }
  OVS_TRACE_SCOPE("trainer.guard.rollback");
  ++retries_;
  lr_ *= options_.lr_backoff;
  RETURN_IF_ERROR(RestoreModuleParameters(snapshot_, module));
  RETURN_IF_ERROR(
      RestoreAdamState(snapshot_, opt->moments_m().size(), opt));
  if (rng != nullptr && !snapshot_.rng_state.empty()) {
    RETURN_IF_ERROR(rng->LoadState(snapshot_.rng_state));
  }
  opt->set_lr(lr_);
  OVS_COUNTER_INC("trainer.guard.retries");
  obs::AddCounterDynamic("trainer.guard." + stage_ + ".retries", 1);
  obs::SetGaugeDynamic("trainer.guard." + stage_ + ".lr", lr_);
  LOG(WARNING) << stage_ << " diverged at epoch checkpoint "
               << snapshot_.epoch << "; rolled back, retrying with lr "
               << lr_ << " (retry " << retries_ << "/"
               << options_.max_retries << ")";
  return Rollback{snapshot_.epoch, lr_};
}

}  // namespace ovs::core
