#include "core/aux_loss.h"

namespace ovs::core {

void AuxLossSet::SetCensusTargets(const std::vector<double>& od_totals,
                                  double tod_scale, int num_intervals) {
  CHECK(!od_totals.empty());
  CHECK_GT(tod_scale, 0.0);
  CHECK_GT(num_intervals, 0);
  census_scale_ = static_cast<float>(tod_scale * num_intervals);
  census_target_norm_ = nn::Tensor({static_cast<int>(od_totals.size()), 1});
  for (size_t i = 0; i < od_totals.size(); ++i) {
    census_target_norm_[static_cast<int>(i)] =
        static_cast<float>(od_totals[i]) / census_scale_;
  }
  has_census_ = true;
}

void AuxLossSet::SetCameraObservations(const std::vector<int>& links,
                                       const DMat& observed,
                                       double volume_norm) {
  CHECK(!links.empty());
  CHECK_EQ(static_cast<int>(links.size()), observed.rows());
  CHECK_GT(volume_norm, 0.0);
  camera_links_ = links;
  camera_scale_ = static_cast<float>(volume_norm);
  camera_target_norm_ = nn::Tensor({observed.rows(), observed.cols()});
  for (int r = 0; r < observed.rows(); ++r) {
    for (int c = 0; c < observed.cols(); ++c) {
      camera_target_norm_.at(r, c) =
          static_cast<float>(observed.at(r, c)) / camera_scale_;
    }
  }
  has_camera_ = true;
}

void AuxLossSet::SetSpeedLimits(const std::vector<double>& limits_mps,
                                int num_intervals, double speed_scale) {
  CHECK(!limits_mps.empty());
  CHECK_GT(speed_scale, 0.0);
  speed_scale_ = static_cast<float>(speed_scale);
  speed_limit_norm_ =
      nn::Tensor({static_cast<int>(limits_mps.size()), num_intervals});
  for (size_t l = 0; l < limits_mps.size(); ++l) {
    for (int t = 0; t < num_intervals; ++t) {
      speed_limit_norm_.at(static_cast<int>(l), t) =
          static_cast<float>(limits_mps[l]) / speed_scale_;
    }
  }
  has_speed_limit_ = true;
}

nn::Variable AuxLossSet::Compute(const nn::Variable& g, const nn::Variable& q,
                                 const nn::Variable& v) const {
  nn::Variable total(nn::Tensor::Scalar(0.0f));
  if (has_census_ && weights_.census > 0.0f) {
    nn::Variable pred = nn::ScalarMul(nn::SumCols(g), 1.0f / census_scale_);
    nn::Variable term = nn::MseLoss(pred, census_target_norm_);
    total = nn::Add(total, nn::ScalarMul(term, weights_.census));
  }
  if (has_camera_ && weights_.camera > 0.0f) {
    nn::Variable pred = nn::ScalarMul(nn::GatherRows(q, camera_links_),
                                      1.0f / camera_scale_);
    nn::Variable term = nn::MseLoss(pred, camera_target_norm_);
    total = nn::Add(total, nn::ScalarMul(term, weights_.camera));
  }
  if (has_speed_limit_ && weights_.speed_limit > 0.0f) {
    nn::Variable v_norm = nn::ScalarMul(v, 1.0f / speed_scale_);
    nn::Variable limits(speed_limit_norm_, /*requires_grad=*/false);
    nn::Variable excess = nn::Sub(v_norm, limits);
    nn::Variable term = nn::HingeSquaredLoss(excess);
    total = nn::Add(total, nn::ScalarMul(term, weights_.speed_limit));
  }
  return total;
}

}  // namespace ovs::core
