#include "core/checkpoint.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>

#include "nn/serialize.h"
#include "util/atomic_file.h"

namespace ovs::core {

namespace {

constexpr uint32_t kCheckpointMagic = 0x4F565343;  // "OVSC"

/// Generous cap on the serialized RNG state (mt19937_64 text is ~7 KB).
constexpr uint32_t kMaxRngStateLen = 1u << 20;

const nn::Tensor* FindTensor(const TrainerCheckpoint& ckpt,
                             const std::string& name) {
  for (const auto& [n, t] : ckpt.tensors) {
    if (n == name) return &t;
  }
  return nullptr;
}

}  // namespace

Status SaveTrainerCheckpoint(const TrainerCheckpoint& ckpt,
                             const std::string& path) {
  std::error_code ec;
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      return Status::NotFound("cannot create checkpoint directory " +
                              parent.string() + ": " + ec.message());
    }
  }
  AtomicFileWriter writer(path);
  RETURN_IF_ERROR(writer.status());
  std::ostream& out = writer.stream();
  const uint32_t magic = kCheckpointMagic;
  const uint32_t tag = nn::kVersionTag;
  const uint32_t version = nn::kFormatVersion;
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&tag), sizeof(tag));
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  nn::WriteLenPrefixedString(out, ckpt.stage);
  const int32_t epoch = ckpt.epoch;
  out.write(reinterpret_cast<const char*>(&epoch), sizeof(epoch));
  const int64_t opt_step = ckpt.opt_step;
  out.write(reinterpret_cast<const char*>(&opt_step), sizeof(opt_step));
  out.write(reinterpret_cast<const char*>(&ckpt.loss), sizeof(ckpt.loss));
  nn::WriteLenPrefixedString(out, ckpt.rng_state);
  const uint32_t count = static_cast<uint32_t>(ckpt.tensors.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [name, t] : ckpt.tensors) {
    nn::WriteTensorRecord(out, name, t, /*with_crc=*/true);
  }
  return writer.Commit();
}

StatusOr<TrainerCheckpoint> LoadTrainerCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("cannot open for read: " + path);
  }
  std::error_code ec;
  const auto file_size = std::filesystem::file_size(path, ec);
  if (ec) return Status::NotFound("cannot stat " + path + ": " + ec.message());
  if (file_size == 0) return Status::DataLoss("empty file: " + path);
  int64_t remaining = static_cast<int64_t>(file_size);
  if (remaining < static_cast<int64_t>(3 * sizeof(uint32_t))) {
    return Status::DataLoss("headerless file (" + std::to_string(remaining) +
                            " bytes): " + path);
  }

  uint32_t magic = 0, tag = 0, version = 0;
  RETURN_IF_ERROR(nn::ReadPod(in, path, &remaining, &magic, sizeof(magic)));
  if (magic != kCheckpointMagic) {
    return Status::DataLoss("bad magic in " + path);
  }
  RETURN_IF_ERROR(nn::ReadPod(in, path, &remaining, &tag, sizeof(tag)));
  RETURN_IF_ERROR(nn::ReadPod(in, path, &remaining, &version, sizeof(version)));
  if (tag != nn::kVersionTag || version != nn::kFormatVersion) {
    return Status::DataLoss("unsupported checkpoint version in " + path);
  }

  TrainerCheckpoint ckpt;
  RETURN_IF_ERROR(nn::ReadLenPrefixedString(in, path, &remaining,
                                            nn::kMaxNameLen, &ckpt.stage));
  int32_t epoch = 0;
  RETURN_IF_ERROR(nn::ReadPod(in, path, &remaining, &epoch, sizeof(epoch)));
  if (epoch < 0) return Status::DataLoss("negative epoch in " + path);
  ckpt.epoch = epoch;
  RETURN_IF_ERROR(
      nn::ReadPod(in, path, &remaining, &ckpt.opt_step, sizeof(ckpt.opt_step)));
  if (ckpt.opt_step < 0) return Status::DataLoss("negative step in " + path);
  RETURN_IF_ERROR(
      nn::ReadPod(in, path, &remaining, &ckpt.loss, sizeof(ckpt.loss)));
  RETURN_IF_ERROR(nn::ReadLenPrefixedString(in, path, &remaining,
                                            kMaxRngStateLen, &ckpt.rng_state));
  uint32_t count = 0;
  RETURN_IF_ERROR(nn::ReadPod(in, path, &remaining, &count, sizeof(count)));
  ckpt.tensors.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    nn::Tensor t;
    RETURN_IF_ERROR(nn::ReadTensorRecord(in, path, /*with_crc=*/true,
                                         &remaining, &name, &t));
    ckpt.tensors.emplace_back(std::move(name), std::move(t));
  }
  if (remaining != 0) {
    return Status::DataLoss("trailing bytes after checkpoint in " + path);
  }
  return ckpt;
}

Status RestoreModuleParameters(const TrainerCheckpoint& ckpt,
                               nn::Module* module) {
  CHECK(module != nullptr);
  for (auto& [name, v] : module->NamedParameters()) {
    const nn::Tensor* t = FindTensor(ckpt, name);
    if (t == nullptr) {
      return Status::InvalidArgument("checkpoint '" + ckpt.stage +
                                     "' is missing parameter " + name);
    }
    if (!t->SameShape(v.value())) {
      return Status::InvalidArgument("checkpoint '" + ckpt.stage +
                                     "' has a shape mismatch for " + name);
    }
    v.mutable_value() = *t;
  }
  return Status::Ok();
}

void AppendAdamState(const nn::Adam& opt, TrainerCheckpoint* ckpt) {
  ckpt->opt_step = opt.step_count();
  for (size_t i = 0; i < opt.moments_m().size(); ++i) {
    ckpt->tensors.emplace_back("adam.m." + std::to_string(i),
                               opt.moments_m()[i]);
    ckpt->tensors.emplace_back("adam.v." + std::to_string(i),
                               opt.moments_v()[i]);
  }
}

Status RestoreAdamState(const TrainerCheckpoint& ckpt, size_t num_params,
                        nn::Adam* opt) {
  CHECK(opt != nullptr);
  std::vector<nn::Tensor> m;
  std::vector<nn::Tensor> v;
  m.reserve(num_params);
  v.reserve(num_params);
  for (size_t i = 0; i < num_params; ++i) {
    const nn::Tensor* mi = FindTensor(ckpt, "adam.m." + std::to_string(i));
    const nn::Tensor* vi = FindTensor(ckpt, "adam.v." + std::to_string(i));
    if (mi == nullptr || vi == nullptr) {
      return Status::InvalidArgument("checkpoint '" + ckpt.stage +
                                     "' is missing optimizer moment " +
                                     std::to_string(i));
    }
    // Validate against the optimizer's live moment shapes so a crossed file
    // comes back as an error instead of tripping an internal CHECK.
    if (!mi->SameShape(opt->moments_m()[i]) ||
        !vi->SameShape(opt->moments_v()[i])) {
      return Status::InvalidArgument("checkpoint '" + ckpt.stage +
                                     "' has a moment shape mismatch at " +
                                     std::to_string(i));
    }
    m.push_back(*mi);
    v.push_back(*vi);
  }
  if (ckpt.opt_step > std::numeric_limits<int>::max()) {
    return Status::InvalidArgument("optimizer step count out of range in '" +
                                   ckpt.stage + "'");
  }
  opt->RestoreState(static_cast<int>(ckpt.opt_step), std::move(m),
                    std::move(v));
  return Status::Ok();
}

}  // namespace ovs::core
