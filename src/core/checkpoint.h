#ifndef OVS_CORE_CHECKPOINT_H_
#define OVS_CORE_CHECKPOINT_H_

#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"
#include "util/status.h"

namespace ovs::core {

/// Where and how often the trainer checkpoints, and whether it resumes.
/// Wired to --checkpoint_dir= / --checkpoint_every= / --resume in the bench
/// binaries (util/bench_config).
struct CheckpointOptions {
  /// Directory for checkpoint files; empty disables checkpointing.
  std::string dir;
  /// Epochs between stage-1/stage-2 checkpoints (the final epoch is always
  /// checkpointed). Values < 1 mean "final epoch only".
  int every = 10;
  /// Resume from existing checkpoints in `dir` instead of starting over.
  bool resume = false;

  bool enabled() const { return !dir.empty(); }
};

/// One trainer checkpoint: everything needed to continue a training stage or
/// recovery restart so that the resumed run is bitwise-identical to an
/// uninterrupted one — parameters, optimizer moments, the epoch index, the
/// RNG stream, and (for recovery restarts) the final loss.
struct TrainerCheckpoint {
  /// Which stage wrote this ("stage1", "stage2", "recovery.restart<k>").
  /// Loading refuses a stage mismatch so files cannot be crossed.
  std::string stage;
  /// Epochs fully completed when this checkpoint was taken.
  int epoch = 0;
  /// Optimizer step counter (Adam bias correction) at the checkpoint.
  int64_t opt_step = 0;
  /// Stage- or restart-final loss at the checkpoint.
  double loss = 0.0;
  /// Serialized Rng state (Rng::SaveState), empty if the stage draws none.
  std::string rng_state;
  /// Named tensors: module parameters under their own names, optimizer
  /// moments as "adam.m.<i>"/"adam.v.<i>", recovery seeds as "seeds".
  std::vector<std::pair<std::string, nn::Tensor>> tensors;
};

/// Atomically writes `ckpt` (v2 container: version tag + per-tensor CRC32),
/// creating the parent directory if needed. A crash mid-save leaves the
/// previous checkpoint file intact.
[[nodiscard]] Status SaveTrainerCheckpoint(const TrainerCheckpoint& ckpt,
                                           const std::string& path);

/// Loads and fully validates a checkpoint: corruption (truncation, bad CRC,
/// absurd headers) surfaces as Status::DataLoss, never as garbage state or
/// a crash. NotFound when the file does not exist.
[[nodiscard]] StatusOr<TrainerCheckpoint> LoadTrainerCheckpoint(
    const std::string& path);

/// Copies the checkpoint's tensors into the module's identically named
/// parameters. Tensors that are not parameters of `module` (optimizer
/// moments, seeds) are ignored; a missing or shape-mismatched parameter is
/// an error and leaves the module partially updated only on that error path.
[[nodiscard]] Status RestoreModuleParameters(const TrainerCheckpoint& ckpt,
                                             nn::Module* module);

/// Appends the optimizer's moments and step counter to `ckpt`.
void AppendAdamState(const nn::Adam& opt, TrainerCheckpoint* ckpt);

/// Restores Adam moments/step from `ckpt` ("adam.m.<i>"/"adam.v.<i>").
[[nodiscard]] Status RestoreAdamState(const TrainerCheckpoint& ckpt,
                                      size_t num_params, nn::Adam* opt);

}  // namespace ovs::core

#endif  // OVS_CORE_CHECKPOINT_H_
