#include "core/training_data.h"

#include <algorithm>

#include "od/demand.h"
#include "od/patterns.h"

namespace ovs::core {

namespace {

/// Pattern scaling so the paper's veh/min rates land at the dataset's demand
/// level: mean pattern rate is ~10 veh/min, the dataset wants
/// `mean_trips_per_od_interval` per interval.
od::PatternConfig PatternConfigFor(const data::Dataset& dataset) {
  od::PatternConfig pc;
  pc.interval_minutes = dataset.config.interval_s / 60.0;
  const double paper_mean_per_interval = 10.0 * pc.interval_minutes;
  pc.rate_scale = dataset.config.mean_trips_per_od_interval *
                  dataset.config.training_demand_multiplier /
                  paper_mean_per_interval;
  return pc;
}

}  // namespace

TrainingSample SimulateTod(const data::Dataset& dataset,
                           const od::TodTensor& tod, uint64_t seed,
                           const std::vector<sim::RoadWork>& works) {
  Rng rng(seed);
  od::DemandGenerator demand(&dataset.net, &dataset.regions, &dataset.od_set,
                             dataset.config.interval_s);
  std::vector<sim::TripRequest> trips = demand.Generate(tod, &rng);
  sim::SensorData sensors =
      sim::Simulate(dataset.net, dataset.engine_config, trips, works);
  TrainingSample sample;
  sample.tod = tod;
  sample.volume = std::move(sensors.volume);
  sample.speed = std::move(sensors.speed);
  return sample;
}

TrainingSample SimulateGroundTruth(const data::Dataset& dataset, uint64_t seed) {
  return SimulateTod(dataset, dataset.ground_truth_tod, seed);
}

TrainingData GenerateTrainingData(const data::Dataset& dataset, int num_samples,
                                  uint64_t seed) {
  CHECK_GT(num_samples, 0);
  Rng rng(seed);
  const od::PatternConfig pc = PatternConfigFor(dataset);

  std::vector<od::TodTensor> tods = od::GenerateTrainingTods(
      num_samples, dataset.num_od(), dataset.num_intervals(), pc, &rng);

  TrainingData out;
  out.samples.reserve(tods.size());
  double tod_max = 1.0, vol_max = 1.0, speed_max = 1.0;
  for (size_t i = 0; i < tods.size(); ++i) {
    TrainingSample sample =
        SimulateTod(dataset, tods[i], seed + 1000 + i);
    tod_max = std::max(tod_max, sample.tod.mat().Max());
    vol_max = std::max(vol_max, sample.volume.Max());
    speed_max = std::max(speed_max, sample.speed.Max());
    out.samples.push_back(std::move(sample));
  }
  // Headroom so the sigmoid ceilings sit above every observed value.
  out.tod_scale = tod_max * 1.2;
  out.volume_norm = vol_max;
  out.speed_scale = speed_max * 1.05;
  return out;
}

}  // namespace ovs::core
