#ifndef OVS_CORE_TRAIN_GUARD_H_
#define OVS_CORE_TRAIN_GUARD_H_

#include <string>

#include "core/checkpoint.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "util/rng.h"
#include "util/status.h"

namespace ovs::core {

/// Divergence policy for the training/recovery epoch loops (see
/// TrainerConfig::guard and DESIGN.md "Divergence-safe training").
struct TrainGuardOptions {
  /// Off = the pre-guard behavior: non-finite losses propagate unchecked.
  bool enabled = true;
  /// Rollback-retry attempts per guarded loop before giving up with a
  /// Status. Bounds the backoff — the guard can never loop forever.
  int max_retries = 3;
  /// Learning-rate multiplier applied on every retry (halved by default).
  float lr_backoff = 0.5f;
  /// Test-only fault injection: when >= 0, the guard reports the Nth
  /// (0-based) health check of its loop as diverged, for `fault_count`
  /// consecutive checks. Checks are counted across retries, so a rolled
  /// back epoch re-checks under a later index and can pass — which is what
  /// lets the drill converge. Production runs leave this at -1.
  int fault_at_check = -1;
  int fault_count = 1;
};

/// Watches one training loop (a stage or a recovery restart) for numeric
/// divergence. The trainer snapshots the post-epoch state after every
/// healthy epoch (in memory — independent of the on-disk checkpoint
/// cadence, which stays crash-recovery's job); when a loss or any parameter
/// goes non-finite, TryRollback restores the last good snapshot, shrinks
/// the learning rate, and hands back the epoch to resume from. Retries are
/// capped: an exhausted guard returns a Status instead of looping.
///
/// Deterministic by construction: the guard holds no global state, draws no
/// randomness, and its check counter advances identically at any thread
/// count (each recovery restart owns a private guard).
class TrainGuard {
 public:
  /// `stage` names the guarded loop in Status messages and metrics
  /// ("stage1", "stage2", "recovery.restart<k>"); `initial_lr` seeds the
  /// backoff sequence.
  TrainGuard(std::string stage, const TrainGuardOptions& options,
             float initial_lr);

  /// Records the state to roll back to: module parameters, optimizer
  /// moments/step, and the loop's RNG stream (empty when the loop draws
  /// none). Call once before the epoch loop and after every healthy epoch.
  void Snapshot(int epoch, double loss, const nn::Module& module,
                const nn::Adam& opt, std::string rng_state);

  /// Health verdict for the epoch that just ran: the loss and every module
  /// parameter must be finite (plus any injected test fault). Always true
  /// when the guard is disabled.
  [[nodiscard]] bool EpochHealthy(double loss, const nn::Module& module);

  struct Rollback {
    int epoch = 0;  ///< epoch to resume from (the snapshot's epoch)
    float lr = 0;   ///< reduced learning rate, already set on the optimizer
  };

  /// Restores the last snapshot into `module`/`opt` (and `rng`, when
  /// non-null and the snapshot carries a stream), applies the LR backoff,
  /// and counts the retry. Returns the resume point, or an Internal Status
  /// once `max_retries` is exhausted — the hard cap that turns a divergent
  /// run into an error instead of an infinite loop.
  [[nodiscard]] StatusOr<Rollback> TryRollback(nn::Module* module,
                                               nn::Adam* opt, Rng* rng);

  int retries_used() const { return retries_; }
  float lr() const { return lr_; }

 private:
  std::string stage_;
  TrainGuardOptions options_;
  float lr_;
  int checks_ = 0;
  int retries_ = 0;
  bool has_snapshot_ = false;
  TrainerCheckpoint snapshot_;
};

}  // namespace ovs::core

#endif  // OVS_CORE_TRAIN_GUARD_H_
