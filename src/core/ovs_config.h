#ifndef OVS_CORE_OVS_CONFIG_H_
#define OVS_CORE_OVS_CONFIG_H_

namespace ovs::core {

/// Architecture hyperparameters of the OVS model (paper Table IV) plus the
/// normalization scales that anchor the sigmoid-bounded outputs to physical
/// units. The network sizes default to the paper's; `lstm_hidden` offers a
/// smaller fast setting because the full 128 is costly on one core.
struct OvsConfig {
  // --- TOD Generation (2 x FC(16), sigmoid) ---
  int seed_dim = 16;       ///< dimension of the Gaussian seed per OD
  int tod_hidden = 16;

  // --- TOD-Volume mapping ---
  int conv_channels = 8;   ///< Route-e conv channels (1x3 kernels)
  int conv_kernel = 3;
  int attention_hidden = 16;  ///< e-alpha FC width
  int link_embed_dim = 8;  ///< learned per-link embedding in the attention
  int lags = 4;            ///< attention look-back window (time frames)

  // --- Volume-Speed mapping (paper: LSTM(128) x2 + FC(32)) ---
  int lstm_hidden = 32;
  int speed_head_hidden = 32;
  /// Learned per-link embedding concatenated with the volume input at every
  /// LSTM step. The paper shares the LSTM across links with no identity
  /// signal; on heterogeneous links (signal offsets, irregular lengths) the
  /// shared net cannot express per-link congestion response without it.
  /// 0 disables (paper-faithful).
  int v2s_link_embed_dim = 8;

  // --- Normalization scales (set from training data) ---
  float tod_scale = 100.0f;    ///< max trip count a TOD cell can take
  float volume_norm = 200.0f;  ///< volume divisor into the LSTM
  float speed_scale = 14.0f;   ///< max speed in m/s (sigmoid ceiling)

  float dropout = 0.0f;  ///< paper uses 0.3 during the mapping training

  /// Worker threads for the training/recovery hot paths (GEMM row blocks,
  /// concurrent recovery restarts). 0 keeps the process-wide default
  /// (OVS_NUM_THREADS env var, else hardware_concurrency); >= 1 resizes the
  /// global pool when an OvsTrainer is constructed on this config. Results
  /// are bitwise-identical for every thread count (see DESIGN.md).
  int num_threads = 0;
};

}  // namespace ovs::core

#endif  // OVS_CORE_OVS_CONFIG_H_
