#include "core/tod_generation.h"

#include <cmath>

#include "obs/trace.h"

namespace ovs::core {

TodGeneration::TodGeneration(int num_od, int num_intervals,
                             const OvsConfig& config, Rng* rng)
    : num_od_(num_od),
      num_intervals_(num_intervals),
      tod_scale_(config.tod_scale),
      seeds_(nn::Tensor::RandomGaussian({num_od, config.seed_dim}, 0.0f, 1.0f, rng)),
      fc1_(config.seed_dim, config.tod_hidden, rng),
      fc2_(config.tod_hidden, num_intervals, rng) {
  CHECK_GT(num_od, 0);
  CHECK_GT(num_intervals, 0);
  CHECK_GT(tod_scale_, 0.0f);
  RegisterModule("fc1", &fc1_);
  RegisterModule("fc2", &fc2_);
}

nn::Variable TodGeneration::Forward() const {
  OVS_TRACE_SCOPE("tod_generation.forward");
  nn::Variable z(seeds_, /*requires_grad=*/false);
  nn::Variable h = nn::Sigmoid(fc1_.Forward(z));               // Eq. (1)
  nn::Variable g_norm = nn::Sigmoid(fc2_.Forward(h));          // Eq. (2)
  return nn::ScalarMul(g_norm, tod_scale_);
}

void TodGeneration::ResampleSeeds(Rng* rng) {
  CHECK(rng != nullptr);
  seeds_ = nn::Tensor::RandomGaussian({num_od_, seeds_.dim(1)}, 0.0f, 1.0f, rng);
}

void TodGeneration::set_seeds(const nn::Tensor& seeds) {
  CHECK(seeds.SameShape(seeds_))
      << "seed tensor shape mismatch: " << nn::ShapeToString(seeds.shape());
  seeds_ = seeds;
}

void TodGeneration::InitializeOutputLevel(float fraction) {
  CHECK_GT(fraction, 0.0f);
  CHECK_LT(fraction, 1.0f);
  const float target_logit = std::log(fraction / (1.0f - fraction));
  // Center each output unit's pre-activation at logit(fraction) while
  // keeping the full seed-driven variation: measure the current mean
  // pre-activation (without bias) across ODs and absorb it into the bias.
  nn::Variable z(seeds_, /*requires_grad=*/false);
  nn::Variable h = nn::Sigmoid(fc1_.Forward(z));
  auto named = fc2_.NamedParameters();
  nn::Variable weight, bias;
  for (auto& [name, v] : named) {
    if (name == "weight") weight = v;
    if (name == "bias") bias = v;
  }
  CHECK(weight.defined());
  CHECK(bias.defined());
  nn::Tensor pre = nn::MatMul(h, weight).value();  // [num_od x T]
  for (int t = 0; t < num_intervals_; ++t) {
    float mean_pre = 0.0f;
    for (int i = 0; i < num_od_; ++i) mean_pre += pre.at(i, t);
    mean_pre /= static_cast<float>(num_od_);
    bias.mutable_value()[t] = target_logit - mean_pre;
  }
}

}  // namespace ovs::core
