#include "od/demand.h"

#include <algorithm>
#include <cmath>

namespace ovs::od {

DemandGenerator::DemandGenerator(const sim::RoadNet* net,
                                 const RegionPartition* regions,
                                 const OdSet* od_set, double interval_s,
                                 Options options)
    : net_(net), regions_(regions), od_set_(od_set), interval_s_(interval_s),
      options_(options), router_(net) {
  CHECK(net != nullptr);
  CHECK(regions != nullptr);
  CHECK(od_set != nullptr);
  CHECK_GT(interval_s, 0.0);
  CHECK_GE(options_.routes_per_od, 1);
}

StatusOr<sim::Route> DemandGenerator::SampleRoute(sim::IntersectionId o,
                                                  sim::IntersectionId d,
                                                  Rng* rng) {
  if (options_.routes_per_od <= 1) return router_.CachedRoute(o, d);

  auto key = std::make_pair(o, d);
  auto it = alternatives_.find(key);
  if (it == alternatives_.end()) {
    StatusOr<std::vector<sim::Route>> routes =
        router_.KShortestRoutes(o, d, options_.routes_per_od);
    if (!routes.ok()) return routes.status();
    it = alternatives_.emplace(key, std::move(routes.value())).first;
  }
  const std::vector<sim::Route>& routes = it->second;
  CHECK(!routes.empty());
  if (routes.size() == 1) return routes[0];

  // Logit choice on free-flow travel time, anchored at the best route.
  std::vector<double> weights;
  weights.reserve(routes.size());
  double best = 1e30;
  for (const sim::Route& r : routes) {
    best = std::min(best, router_.RouteFreeFlowTime(r));
  }
  for (const sim::Route& r : routes) {
    weights.push_back(std::exp(-options_.logit_theta *
                               (router_.RouteFreeFlowTime(r) - best)));
  }
  return routes[rng->Categorical(weights)];
}

int DemandGenerator::RoundCount(double count, Rng* rng) const {
  CHECK_GE(count, -1e-9) << "negative trip count";
  const double clamped = std::max(0.0, count);
  const int base = static_cast<int>(std::floor(clamped));
  const double frac = clamped - base;
  return base + (frac > 0.0 && rng->Bernoulli(frac) ? 1 : 0);
}

std::vector<sim::TripRequest> DemandGenerator::Generate(const TodTensor& tod,
                                                        Rng* rng) {
  CHECK(rng != nullptr);
  CHECK_EQ(tod.num_od(), od_set_->size());
  dropped_trips_ = 0;

  std::vector<sim::TripRequest> trips;
  for (int i = 0; i < tod.num_od(); ++i) {
    const OdPair& pair = od_set_->pair(i);
    const Region& origin = regions_->region(pair.origin);
    const Region& dest = regions_->region(pair.dest);
    for (int t = 0; t < tod.num_intervals(); ++t) {
      const int count = RoundCount(tod.at(i, t), rng);
      for (int v = 0; v < count; ++v) {
        const sim::IntersectionId o =
            origin.members[rng->UniformInt(0, static_cast<int>(origin.members.size()) - 1)];
        const sim::IntersectionId d =
            dest.members[rng->UniformInt(0, static_cast<int>(dest.members.size()) - 1)];
        if (o == d) {
          // Intra-intersection trip: no road usage; treat as dropped.
          ++dropped_trips_;
          continue;
        }
        StatusOr<sim::Route> route = SampleRoute(o, d, rng);
        if (!route.ok()) {
          ++dropped_trips_;
          continue;
        }
        sim::TripRequest trip;
        trip.depart_time_s = (t + rng->Uniform(0.0, 1.0)) * interval_s_;
        trip.route = route.value();
        trips.push_back(std::move(trip));
      }
    }
  }
  return trips;
}

}  // namespace ovs::od
