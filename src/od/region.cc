#include "od/region.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

namespace ovs::od {

int RegionPartition::AddRegion(const sim::RoadNet& net,
                               std::vector<sim::IntersectionId> members,
                               std::string name) {
  CHECK(!members.empty()) << "region must have at least one intersection";
  Region r;
  r.id = num_regions();
  r.name = name.empty() ? "region" + std::to_string(r.id) : std::move(name);
  double sx = 0.0, sy = 0.0;
  for (sim::IntersectionId m : members) {
    const sim::Intersection& node = net.intersection(m);
    sx += node.x;
    sy += node.y;
  }
  r.centroid_x = sx / members.size();
  r.centroid_y = sy / members.size();
  r.members = std::move(members);
  regions_.push_back(std::move(r));
  return regions_.back().id;
}

double RegionPartition::Distance(int a, int b) const {
  const Region& ra = region(a);
  const Region& rb = region(b);
  return std::hypot(ra.centroid_x - rb.centroid_x, ra.centroid_y - rb.centroid_y);
}

Status RegionPartition::Validate(const sim::RoadNet& net) const {
  std::set<sim::IntersectionId> seen;
  for (const Region& r : regions_) {
    if (r.members.empty()) {
      return Status::FailedPrecondition("region " + r.name + " is empty");
    }
    for (sim::IntersectionId m : r.members) {
      if (m < 0 || m >= net.num_intersections()) {
        return Status::FailedPrecondition("region " + r.name +
                                          " references unknown intersection");
      }
      if (!seen.insert(m).second) {
        return Status::FailedPrecondition(
            "intersection " + std::to_string(m) + " is in two regions");
      }
    }
  }
  return Status::Ok();
}

RegionPartition PartitionByGrid(const sim::RoadNet& net, int cells_x, int cells_y) {
  CHECK_GT(cells_x, 0);
  CHECK_GT(cells_y, 0);
  CHECK_GT(net.num_intersections(), 0);

  double min_x = std::numeric_limits<double>::infinity(), max_x = -min_x;
  double min_y = min_x, max_y = -min_x;
  for (const sim::Intersection& node : net.intersections()) {
    min_x = std::min(min_x, node.x);
    max_x = std::max(max_x, node.x);
    min_y = std::min(min_y, node.y);
    max_y = std::max(max_y, node.y);
  }
  const double span_x = std::max(1e-9, max_x - min_x);
  const double span_y = std::max(1e-9, max_y - min_y);

  std::vector<std::vector<sim::IntersectionId>> cells(
      static_cast<size_t>(cells_x) * cells_y);
  for (const sim::Intersection& node : net.intersections()) {
    int cx = std::min(cells_x - 1,
                      static_cast<int>((node.x - min_x) / span_x * cells_x));
    int cy = std::min(cells_y - 1,
                      static_cast<int>((node.y - min_y) / span_y * cells_y));
    cells[static_cast<size_t>(cy) * cells_x + cx].push_back(node.id);
  }

  RegionPartition partition;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (!cells[i].empty()) {
      partition.AddRegion(net, std::move(cells[i]), "cell" + std::to_string(i));
    }
  }
  return partition;
}

}  // namespace ovs::od
