#include "od/tod_tensor.h"

#include <algorithm>

#include "util/csv.h"
#include "util/parse.h"
#include "util/string_util.h"

namespace ovs::od {

int OdSet::Find(int origin, int dest) const {
  for (int i = 0; i < size(); ++i) {
    if (pairs_[i].origin == origin && pairs_[i].dest == dest) return i;
  }
  return -1;
}

void TodTensor::Clamp(double lo, double hi) {
  CHECK_LE(lo, hi);
  for (int i = 0; i < counts_.rows(); ++i) {
    for (int t = 0; t < counts_.cols(); ++t) {
      counts_.at(i, t) = std::clamp(counts_.at(i, t), lo, hi);
    }
  }
}

Status TodTensor::SaveCsv(const std::string& path) const {
  std::vector<std::string> header;
  header.push_back("od");
  for (int t = 0; t < num_intervals(); ++t) {
    // Built via += rather than operator+(const char*, string&&): the latter
    // trips a GCC 12 -Wrestrict false positive (PR105651) at -O2.
    std::string col = "t";
    col += std::to_string(t);
    header.push_back(std::move(col));
  }
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < num_od(); ++i) {
    std::vector<std::string> row;
    row.push_back(std::to_string(i));
    for (int t = 0; t < num_intervals(); ++t) {
      row.push_back(FormatDouble(at(i, t), 6));
    }
    rows.push_back(std::move(row));
  }
  return WriteCsv(path, header, rows);
}

StatusOr<TodTensor> TodTensor::LoadCsv(const std::string& path) {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  RETURN_IF_ERROR(ReadCsv(path, &header, &rows));
  if (header.size() < 2) return Status::DataLoss("TOD CSV too narrow: " + path);
  const int t_count = static_cast<int>(header.size()) - 1;
  TodTensor tod(static_cast<int>(rows.size()), t_count);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (int t = 0; t < t_count; ++t) {
      ASSIGN_OR_RETURN(
          tod.at(static_cast<int>(i), t),
          ParseDouble(rows[i][t + 1],
                      path + " row " + std::to_string(i + 1) + " col " +
                          std::to_string(t + 1)));
    }
  }
  return tod;
}

}  // namespace ovs::od
