#ifndef OVS_OD_PATTERNS_H_
#define OVS_OD_PATTERNS_H_

#include <string>
#include <vector>

#include "od/tod_tensor.h"
#include "util/rng.h"

namespace ovs::od {

/// The five synthetic TOD patterns of the paper's §V-B. Rates are expressed
/// in vehicles/minute as in the paper and converted with the interval length.
enum class TodPattern {
  kRandom,      ///< uniform in [1, 20] veh/min per cell
  kIncreasing,  ///< 5 veh/min, +2 every 10 minutes, plus noise
  kDecreasing,  ///< 20 veh/min, -2 every 10 minutes, plus noise
  kGaussian,    ///< N(10, 4) veh/min
  kPoisson,     ///< Poisson(lambda = 3) veh/min
};

/// All five patterns, in paper order.
const std::vector<TodPattern>& AllTodPatterns();

/// "Random", "Increasing", ... (paper table headers).
std::string TodPatternName(TodPattern pattern);

/// Knobs for pattern generation. `rate_scale` uniformly scales the paper's
/// vehicles/minute rates so the demand can be sized to a given network
/// without changing the pattern shapes.
struct PatternConfig {
  double interval_minutes = 10.0;
  double rate_scale = 1.0;
  double noise_stddev = 2.0;  ///< veh/min noise on Increasing/Decreasing
  double min_rate = 0.0;      ///< floor after noise, veh/min
};

/// Generates a [num_od x num_intervals] TOD tensor following `pattern`.
/// Entries are vehicles per *interval* (rate * interval_minutes).
TodTensor GenerateTodPattern(TodPattern pattern, int num_od, int num_intervals,
                             const PatternConfig& config, Rng* rng);

/// The paper's training-set recipe (§V-D): `count` tensors with every 20%
/// slice following one of the five patterns.
std::vector<TodTensor> GenerateTrainingTods(int count, int num_od,
                                            int num_intervals,
                                            const PatternConfig& config,
                                            Rng* rng);

}  // namespace ovs::od

#endif  // OVS_OD_PATTERNS_H_
