#include "od/incidence.h"

#include <cmath>
#include <limits>

namespace ovs::od {

sim::IntersectionId RepresentativeIntersection(const sim::RoadNet& net,
                                               const Region& region) {
  CHECK(!region.members.empty());
  sim::IntersectionId best = region.members[0];
  double best_dist = std::numeric_limits<double>::infinity();
  for (sim::IntersectionId m : region.members) {
    const sim::Intersection& node = net.intersection(m);
    const double d =
        std::hypot(node.x - region.centroid_x, node.y - region.centroid_y);
    if (d < best_dist) {
      best_dist = d;
      best = m;
    }
  }
  return best;
}

std::vector<sim::Route> ComputeOdRoutes(const sim::RoadNet& net,
                                        const RegionPartition& regions,
                                        const OdSet& od_set) {
  sim::Router router(&net);
  std::vector<sim::Route> routes;
  routes.reserve(od_set.size());
  for (int i = 0; i < od_set.size(); ++i) {
    const OdPair& pair = od_set.pair(i);
    const sim::IntersectionId o =
        RepresentativeIntersection(net, regions.region(pair.origin));
    const sim::IntersectionId d =
        RepresentativeIntersection(net, regions.region(pair.dest));
    StatusOr<sim::Route> route = router.CachedRoute(o, d);
    routes.push_back(route.ok() ? route.value() : sim::Route{});
  }
  return routes;
}

DMat RouteLinkIncidence(const std::vector<sim::Route>& routes, int num_links) {
  DMat incidence(num_links, static_cast<int>(routes.size()));
  for (size_t i = 0; i < routes.size(); ++i) {
    for (sim::LinkId link : routes[i]) {
      CHECK_GE(link, 0);
      CHECK_LT(link, num_links);
      incidence.at(link, static_cast<int>(i)) = 1.0;
    }
  }
  return incidence;
}

}  // namespace ovs::od
