#ifndef OVS_OD_DEMAND_H_
#define OVS_OD_DEMAND_H_

#include <map>
#include <utility>
#include <vector>

#include "od/region.h"
#include "od/tod_tensor.h"
#include "sim/engine.h"
#include "sim/router.h"
#include "util/rng.h"

namespace ovs::od {

/// Turns a TOD tensor into individual vehicle trips for the simulator:
/// fractional counts are stochastically rounded, origin/destination
/// intersections are drawn uniformly from the region members, departures are
/// spread uniformly over the interval, and each trip follows the shortest
/// (free-flow) route — the paper's single-route simplification.
class DemandGenerator {
 public:
  /// Route-choice options. The default (1 route) is the paper's
  /// shortest-route simplification; `routes_per_od > 1` samples each trip's
  /// route from the k shortest alternatives with a logit model on free-flow
  /// time (the paper's §VI future-work setting).
  struct Options {
    int routes_per_od = 1;
    /// Logit sensitivity (1/s): P(route) ∝ exp(-theta * travel_time).
    double logit_theta = 0.05;
  };

  DemandGenerator(const sim::RoadNet* net, const RegionPartition* regions,
                  const OdSet* od_set, double interval_s, Options options);
  DemandGenerator(const sim::RoadNet* net, const RegionPartition* regions,
                  const OdSet* od_set, double interval_s)
      : DemandGenerator(net, regions, od_set, interval_s, Options()) {}

  /// Generates trips for the whole tensor. Unroutable OD draws (no path)
  /// are skipped and counted in `dropped_trips`.
  std::vector<sim::TripRequest> Generate(const TodTensor& tod, Rng* rng);

  int dropped_trips() const { return dropped_trips_; }

 private:
  /// Integer vehicle count for a fractional cell: floor + Bernoulli(frac).
  int RoundCount(double count, Rng* rng) const;

  /// Samples a route from o to d according to the route-choice options.
  StatusOr<sim::Route> SampleRoute(sim::IntersectionId o, sim::IntersectionId d,
                                   Rng* rng);

  const sim::RoadNet* net_;
  const RegionPartition* regions_;
  const OdSet* od_set_;
  double interval_s_;
  Options options_;
  sim::Router router_;
  /// Memoized k-shortest alternatives per intersection pair.
  std::map<std::pair<sim::IntersectionId, sim::IntersectionId>,
           std::vector<sim::Route>>
      alternatives_;
  int dropped_trips_ = 0;
};

}  // namespace ovs::od

#endif  // OVS_OD_DEMAND_H_
