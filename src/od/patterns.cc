#include "od/patterns.h"

#include <algorithm>

namespace ovs::od {

const std::vector<TodPattern>& AllTodPatterns() {
  static const std::vector<TodPattern> patterns{
      TodPattern::kRandom, TodPattern::kIncreasing, TodPattern::kDecreasing,
      TodPattern::kGaussian, TodPattern::kPoisson};
  return patterns;
}

std::string TodPatternName(TodPattern pattern) {
  switch (pattern) {
    case TodPattern::kRandom:
      return "Random";
    case TodPattern::kIncreasing:
      return "Increasing";
    case TodPattern::kDecreasing:
      return "Decreasing";
    case TodPattern::kGaussian:
      return "Gaussian";
    case TodPattern::kPoisson:
      return "Poisson";
  }
  return "Unknown";
}

TodTensor GenerateTodPattern(TodPattern pattern, int num_od, int num_intervals,
                             const PatternConfig& config, Rng* rng) {
  CHECK_GT(num_od, 0);
  CHECK_GT(num_intervals, 0);
  CHECK(rng != nullptr);
  TodTensor tod(num_od, num_intervals);

  auto rate_to_count = [&](double rate_per_min) {
    const double floored = std::max(config.min_rate, rate_per_min);
    return floored * config.rate_scale * config.interval_minutes;
  };

  for (int i = 0; i < num_od; ++i) {
    for (int t = 0; t < num_intervals; ++t) {
      // Ramp position in [0, 1]: the paper's +-2 veh/min per 10-minute step
      // over a 12-interval horizon, generalized so longer horizons keep the
      // same start/end rates (identical values at T = 12).
      const double progress =
          num_intervals > 1 ? static_cast<double>(t) / (num_intervals - 1) : 0.0;
      double rate = 0.0;
      switch (pattern) {
        case TodPattern::kRandom:
          rate = rng->Uniform(1.0, 20.0);
          break;
        case TodPattern::kIncreasing:
          rate = 5.0 + 22.0 * progress + rng->Gaussian(0.0, config.noise_stddev);
          break;
        case TodPattern::kDecreasing:
          rate = 20.0 - 22.0 * progress + rng->Gaussian(0.0, config.noise_stddev);
          break;
        case TodPattern::kGaussian:
          rate = rng->Gaussian(10.0, 2.0);  // variance 4 (paper)
          break;
        case TodPattern::kPoisson:
          rate = static_cast<double>(rng->Poisson(3.0));
          break;
      }
      tod.at(i, t) = rate_to_count(rate);
    }
  }
  return tod;
}

std::vector<TodTensor> GenerateTrainingTods(int count, int num_od,
                                            int num_intervals,
                                            const PatternConfig& config,
                                            Rng* rng) {
  CHECK_GT(count, 0);
  const auto& patterns = AllTodPatterns();
  std::vector<TodTensor> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    // Every 20% of tensors follows one specific pattern (paper §V-D).
    const TodPattern pattern =
        patterns[static_cast<size_t>(i) * patterns.size() / count];
    out.push_back(
        GenerateTodPattern(pattern, num_od, num_intervals, config, rng));
  }
  return out;
}

}  // namespace ovs::od
