#ifndef OVS_OD_TOD_TENSOR_H_
#define OVS_OD_TOD_TENSOR_H_

#include <string>
#include <vector>

#include "util/mat.h"
#include "util/status.h"

namespace ovs::od {

/// One origin-destination pair (region indices). The paper's 2-D tensor G
/// indexes trips by (OD pair, time interval).
struct OdPair {
  int origin = -1;
  int dest = -1;

  bool operator==(const OdPair& other) const {
    return origin == other.origin && dest == other.dest;
  }
};

/// Ordered set of OD pairs under study ("Given N origin-destination pairs",
/// paper Problem 1). Row i of a TodTensor corresponds to pairs()[i].
class OdSet {
 public:
  OdSet() = default;
  explicit OdSet(std::vector<OdPair> pairs) : pairs_(std::move(pairs)) {}

  int size() const { return static_cast<int>(pairs_.size()); }
  const OdPair& pair(int i) const {
    CHECK_GE(i, 0);
    CHECK_LT(i, size());
    return pairs_[i];
  }
  const std::vector<OdPair>& pairs() const { return pairs_; }

  void Add(OdPair p) { pairs_.push_back(p); }

  /// Index of (origin, dest) or -1.
  int Find(int origin, int dest) const;

 private:
  std::vector<OdPair> pairs_;
};

/// The paper's TOD tensor G: trip counts per (OD pair, time interval).
/// Counts are non-negative reals (vehicles per interval); the demand
/// generator stochastically rounds them into integer vehicles.
class TodTensor {
 public:
  TodTensor() = default;
  TodTensor(int num_od, int num_intervals) : counts_(num_od, num_intervals) {}
  explicit TodTensor(DMat counts) : counts_(std::move(counts)) {}

  int num_od() const { return counts_.rows(); }
  int num_intervals() const { return counts_.cols(); }

  double& at(int od, int t) { return counts_.at(od, t); }
  double at(int od, int t) const { return counts_.at(od, t); }

  const DMat& mat() const { return counts_; }
  DMat& mutable_mat() { return counts_; }

  /// Total trips over all ODs and intervals.
  double TotalTrips() const { return counts_.Sum(); }

  /// Trips of OD i summed over the horizon (the LEHD-style daily count).
  double OdTotal(int od) const { return counts_.RowSum(od); }

  /// Clamps all entries into [lo, hi].
  void Clamp(double lo, double hi);

  /// Multiplies every entry by `factor` (e.g., the taxi-to-all-vehicles
  /// scaling of paper §V-B).
  void Scale(double factor) { counts_ *= factor; }

  bool SameShape(const TodTensor& other) const {
    return counts_.SameShape(other.counts_);
  }

  /// CSV round-trip (rows = OD pairs, cols = intervals).
  [[nodiscard]] Status SaveCsv(const std::string& path) const;
  [[nodiscard]] static StatusOr<TodTensor> LoadCsv(const std::string& path);

 private:
  DMat counts_;
};

}  // namespace ovs::od

#endif  // OVS_OD_TOD_TENSOR_H_
