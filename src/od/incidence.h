#ifndef OVS_OD_INCIDENCE_H_
#define OVS_OD_INCIDENCE_H_

#include <vector>

#include "od/region.h"
#include "od/tod_tensor.h"
#include "sim/router.h"
#include "util/mat.h"

namespace ovs::od {

/// The member intersection closest to the region centroid — used as the
/// region's representative when a single route per OD is needed.
sim::IntersectionId RepresentativeIntersection(const sim::RoadNet& net,
                                               const Region& region);

/// One representative (shortest free-flow) route per OD pair, from origin
/// representative to destination representative. ODs with no path get an
/// empty route.
std::vector<sim::Route> ComputeOdRoutes(const sim::RoadNet& net,
                                        const RegionPartition& regions,
                                        const OdSet& od_set);

/// Route->link incidence: out[j, i] = 1 iff OD i's representative route
/// contains link j ("OD i contains link l_j", paper §III). Shape
/// [num_links x num_od].
DMat RouteLinkIncidence(const std::vector<sim::Route>& routes, int num_links);

}  // namespace ovs::od

#endif  // OVS_OD_INCIDENCE_H_
