#ifndef OVS_OD_REGION_H_
#define OVS_OD_REGION_H_

#include <string>
#include <vector>

#include "sim/roadnet.h"

namespace ovs::od {

/// A city region ("as small as one block", paper §III). Trips originate and
/// terminate at member intersections; `population` feeds the Gravity
/// baseline and the census auxiliary loss.
struct Region {
  int id = -1;
  std::string name;
  std::vector<sim::IntersectionId> members;
  double centroid_x = 0.0;
  double centroid_y = 0.0;
  double population = 0.0;
};

/// Partition of a road network's intersections into regions.
class RegionPartition {
 public:
  RegionPartition() = default;

  /// Adds a region with the given members; computes the centroid. Returns id.
  int AddRegion(const sim::RoadNet& net, std::vector<sim::IntersectionId> members,
                std::string name = "");

  int num_regions() const { return static_cast<int>(regions_.size()); }
  const Region& region(int id) const {
    CHECK_GE(id, 0);
    CHECK_LT(id, num_regions());
    return regions_[id];
  }
  Region& mutable_region(int id) {
    CHECK_GE(id, 0);
    CHECK_LT(id, num_regions());
    return regions_[id];
  }
  const std::vector<Region>& regions() const { return regions_; }

  /// Centroid-to-centroid distance in meters.
  double Distance(int a, int b) const;

  /// Checks every intersection belongs to at most one region and every
  /// region is non-empty.
  [[nodiscard]] Status Validate(const sim::RoadNet& net) const;

 private:
  std::vector<Region> regions_;
};

/// Splits a network into cells_x * cells_y spatial cells by intersection
/// coordinates; empty cells are dropped. This mirrors the paper's
/// OpenStreetMap-block regioning at grid granularity.
RegionPartition PartitionByGrid(const sim::RoadNet& net, int cells_x, int cells_y);

}  // namespace ovs::od

#endif  // OVS_OD_REGION_H_
