// Simulator-only example: build a road network by hand, load demand, run the
// microscopic engine and read the sensors. Useful as the entry point for
// anyone adopting the `sim` substrate on its own.
//
// Run: ./build/examples/simulate_city

#include <cstdio>

#include "sim/engine.h"
#include "sim/router.h"
#include "util/rng.h"

int main() {
  using namespace ovs;

  // A small arterial: two parallel east-west corridors joined by cross
  // streets, with a faster "highway" on the north side.
  sim::RoadNet net;
  //   0 -- 1 -- 2 -- 3     (north, 19.4 m/s ~ 70 km/h)
  //   |    |    |    |
  //   4 -- 5 -- 6 -- 7     (south, 13.9 m/s ~ 50 km/h)
  for (int i = 0; i < 4; ++i) net.AddIntersection(i * 400.0, 400.0);
  for (int i = 0; i < 4; ++i) net.AddIntersection(i * 400.0, 0.0);
  for (int i = 0; i < 3; ++i) {
    net.AddRoad(i, i + 1, 400.0, 2, 19.4);          // north corridor
    net.AddRoad(4 + i, 5 + i, 400.0, 1, 13.9);      // south corridor
  }
  for (int i = 0; i < 4; ++i) net.AddRoad(i, 4 + i, 400.0, 1, 13.9);
  CHECK_OK(net.Validate());
  std::printf("network: %d intersections, %d links\n",
              net.num_intersections(), net.num_links());

  // Demand: a rush-hour pulse west->east, routed on the fastest path.
  sim::Router router(&net);
  Rng rng(1);
  sim::EngineConfig config;
  config.duration_s = 3600.0;
  config.interval_s = 600.0;
  sim::Engine engine(&net, config);
  int added = 0;
  for (int i = 0; i < 1200; ++i) {
    const int origin = rng.Bernoulli(0.5) ? 0 : 4;
    const int dest = rng.Bernoulli(0.5) ? 3 : 7;
    StatusOr<sim::Route> route = router.CachedRoute(origin, dest);
    if (!route.ok()) continue;
    // A triangular demand profile peaking mid-hour.
    const double u = rng.Uniform(0.0, 1.0) + rng.Uniform(0.0, 1.0);
    engine.AddTrip({u * 1800.0, route.value()});
    ++added;
  }
  std::printf("loaded %d trips; running 1 hour at 1 s steps...\n", added);

  sim::SensorData out = engine.Run();
  std::printf("completed %d trips, mean travel time %.1f s, %d still "
              "en-route\n\n",
              out.completed_trips, out.mean_travel_time_s,
              engine.active_vehicles());

  std::printf("link sensors (volume entering / mean speed per 10-min "
              "interval):\n");
  std::printf("%-6s", "link");
  for (int t = 0; t < out.volume.cols(); ++t) std::printf("   t%-7d", t);
  std::printf("\n");
  for (int l = 0; l < net.num_links(); ++l) {
    if (out.volume.RowSum(l) == 0.0) continue;  // skip unused links
    std::printf("%-6d", l);
    for (int t = 0; t < out.volume.cols(); ++t) {
      std::printf(" %4.0f/%4.1f", out.volume.at(l, t), out.speed.at(l, t));
    }
    std::printf("\n");
  }
  std::printf(
      "\nNote how the single-lane south corridor slows as the pulse peaks "
      "while the two-lane 70 km/h north corridor absorbs its share.\n");
  return 0;
}
