// Sensor-fusion example — using auxiliary data to prune infeasible TOD
// solutions (paper §IV-E and RQ2).
//
// Speed alone under-determines the TOD (many demand patterns produce similar
// city-wide speed). This example recovers the TOD three times — with the
// main loss only, with a census (LEHD) constraint, and with census + camera
// volume constraints — and shows the recovered per-OD totals pulling toward
// the truth as feeds are added.
//
// Run: ./build/examples/sensor_fusion

#include <tuple>
#include <cmath>
#include <cstdio>

#include "core/trainer.h"
#include "data/cities.h"
#include "eval/harness.h"
#include "util/table.h"

int main() {
  using namespace ovs;

  data::Dataset city = data::BuildDataset(data::PortoConfig());
  std::printf("city '%s': %d links, %d OD pairs, %zu camera links\n",
              city.name.c_str(), city.net.num_links(), city.num_od(),
              city.camera_links.size());

  // Shared training: the mappings are learned once from generated data.
  core::TrainingData train = core::GenerateTrainingData(city, 8, 99);
  Rng rng(5);
  core::OvsConfig config;
  config.tod_scale = static_cast<float>(train.tod_scale);
  config.volume_norm = static_cast<float>(train.volume_norm);
  config.speed_scale = static_cast<float>(train.speed_scale);
  core::OvsModel model(city.num_od(), city.num_links(), city.num_intervals(),
                       city.incidence, config, &rng);
  core::TrainerConfig trainer_config;
  trainer_config.stage1_epochs = 80;
  trainer_config.stage2_epochs = 100;
  trainer_config.recovery_epochs = 250;
  trainer_config.recovery_prior_weight = 0.0f;  // isolate the aux effects
  core::OvsTrainer trainer(&model, trainer_config);
  std::printf("training the TOD->volume->speed mappings...\n");
  std::ignore = trainer.TrainVolumeSpeed(train);
  std::ignore = trainer.TrainTodVolume(train);

  core::TrainingSample truth = core::SimulateGroundTruth(city, 4242);

  // Camera observations: ground-truth volume at the camera links (what the
  // city's surveillance cameras would count).
  DMat camera_volume(static_cast<int>(city.camera_links.size()),
                     city.num_intervals());
  for (size_t i = 0; i < city.camera_links.size(); ++i) {
    for (int t = 0; t < city.num_intervals(); ++t) {
      camera_volume.at(static_cast<int>(i), t) =
          truth.volume.at(city.camera_links[i], t);
    }
  }

  auto recover_with = [&](float census_w, float camera_w) {
    core::AuxLossWeights weights;
    weights.census = census_w;
    weights.camera = camera_w;
    core::AuxLossSet aux(weights);
    if (census_w > 0.0f) {
      aux.SetCensusTargets(city.lehd_od_totals, train.tod_scale,
                           city.num_intervals());
    }
    if (camera_w > 0.0f) {
      std::vector<int> links(city.camera_links.begin(), city.camera_links.end());
      aux.SetCameraObservations(links, camera_volume, train.volume_norm);
    }
    return trainer.RecoverTod(truth.speed, aux.active() ? &aux : nullptr, &rng)
        .value();
  };

  std::printf("recovering TOD under three sensor configurations...\n");
  od::TodTensor speed_only = recover_with(0.0f, 0.0f);
  od::TodTensor with_census = recover_with(2.0f, 0.0f);
  od::TodTensor with_both = recover_with(2.0f, 1.0f);

  Table table("Recovered per-OD totals as auxiliary feeds are added");
  table.SetHeader({"OD", "truth", "speed-only", "+census", "+census+camera"});
  double err0 = 0.0, err1 = 0.0, err2 = 0.0;
  for (int i = 0; i < city.num_od(); ++i) {
    const double target = city.ground_truth_tod.OdTotal(i);
    table.AddRow({std::to_string(i), Table::Cell(target, 0),
                  Table::Cell(speed_only.OdTotal(i), 0),
                  Table::Cell(with_census.OdTotal(i), 0),
                  Table::Cell(with_both.OdTotal(i), 0)});
    err0 += std::fabs(speed_only.OdTotal(i) - target);
    err1 += std::fabs(with_census.OdTotal(i) - target);
    err2 += std::fabs(with_both.OdTotal(i) - target);
  }
  table.Print();
  std::printf("mean |total error|: speed-only %.1f -> +census %.1f -> "
              "+census+camera %.1f\n",
              err0 / city.num_od(), err1 / city.num_od(), err2 / city.num_od());
  return 0;
}
