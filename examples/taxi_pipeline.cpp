// The paper's data front-end, end to end (paper §V-B): a city where only a
// taxi fleet logs GPS. We record all vehicle traces in the simulator, sample
// a taxi subset, map-match traces to OD pairs, bucket them into a taxi TOD,
// scale by the fleet share, and compare against the hidden truth. Then we
// derive the probe-vehicle speed feed a map service would publish — the very
// observation OVS consumes.
//
// Run: ./build/examples/taxi_pipeline

#include <cstdio>

#include "data/cities.h"
#include "data/trajectories.h"
#include "eval/metrics.h"
#include "od/demand.h"

int main() {
  using namespace ovs;

  data::Dataset city = data::BuildDataset(data::Synthetic3x3Config());
  // Light Sunday-style demand so virtually everything spawns and finishes.
  od::TodTensor demand_tensor = city.ground_truth_tod;
  demand_tensor.Scale(0.5);

  // --- Simulate the city with trajectory recording on -------------------
  Rng rng(2024);
  od::DemandGenerator demand(&city.net, &city.regions, &city.od_set,
                             city.config.interval_s);
  std::vector<sim::TripRequest> trips = demand.Generate(demand_tensor, &rng);
  sim::EngineConfig engine_config = city.engine_config;
  engine_config.record_trajectories = true;
  sim::SensorData sensors = sim::Simulate(city.net, engine_config, trips);
  std::printf("simulated %d trips (%d completed); %zu GPS traces recorded\n",
              sensors.spawned_trips, sensors.completed_trips,
              sensors.trajectories.size());

  // --- The taxi fleet: 20% of vehicles log GPS --------------------------
  const double taxi_fraction = 0.2;
  std::vector<sim::VehicleTrace> taxis =
      data::SampleTaxiFleet(sensors.trajectories, taxi_fraction, &rng);
  std::printf("taxi fleet: %zu vehicles (%.0f%% of traffic)\n", taxis.size(),
              taxi_fraction * 100.0);

  // --- Extract and scale the taxi TOD (paper: "scale them with a
  //     city-specific factor # all vehicles / # taxi") -------------------
  od::TodTensor taxi_tod = data::ExtractTodFromTrajectories(
      taxis, city.net, city.regions, city.od_set, city.config.interval_s,
      city.num_intervals());
  od::TodTensor scaled = data::ScaleTaxiTod(taxi_tod, taxi_fraction);
  std::printf("taxi TOD total %.0f -> scaled %.0f (true demand %.0f)\n",
              taxi_tod.TotalTrips(), scaled.TotalTrips(),
              demand_tensor.TotalTrips());
  std::printf("scaled-taxi TOD error vs truth: %.2f RMSE (paper-style, "
              "per-interval)\n",
              eval::PaperRmse(scaled.mat(), demand_tensor.mat()));

  // --- The probe speed feed a map service would publish -----------------
  data::ProbeSpeedOptions probe_options;
  probe_options.probe_fraction = 0.15;
  DMat probe_speed = data::ProbeSpeedTensor(
      sensors.trajectories, city.net, city.config.interval_s,
      city.num_intervals(), probe_options, &rng);
  std::printf("probe speed feed (%.0f%% probes): %.2f m/s RMSE vs the "
              "roadside sensors\n",
              probe_options.probe_fraction * 100.0,
              Rmse(probe_speed, sensors.speed));

  std::printf(
      "\nThis is exactly the input situation of the paper (Fig. 1): sparse "
      "scaled-taxi TOD for training-time auxiliary constraints, pervasive "
      "probe speed as the main observation for OVS.\n");
  return 0;
}
