// City-planner "what-if" example — the paper's motivating use case.
//
// Once the TOD is recovered from speed data, the rebuilt traffic system can
// answer counterfactuals that pure prediction methods cannot (paper §I):
// here, "what happens to travel times if we close a lane on the busiest
// corridor for road work?" and "what if demand grows 30%?".
//
// Run: ./build/examples/city_planner

#include <algorithm>
#include <cstdio>
#include <vector>

#include "baselines/ovs_estimator.h"
#include "data/cities.h"
#include "eval/harness.h"
#include "od/demand.h"

namespace {

/// Simulates a TOD under optional road works and reports headline numbers.
ovs::sim::SensorData RunScenario(const ovs::data::Dataset& city,
                                 const ovs::od::TodTensor& tod,
                                 const std::vector<ovs::sim::RoadWork>& works,
                                 const char* label) {
  using namespace ovs;
  Rng rng(4242);
  od::DemandGenerator demand(&city.net, &city.regions, &city.od_set,
                             city.config.interval_s);
  std::vector<sim::TripRequest> trips = demand.Generate(tod, &rng);
  sim::SensorData out = sim::Simulate(city.net, city.engine_config, trips, works);
  std::printf("  %-28s mean speed %5.2f m/s, mean travel time %6.1f s, "
              "completed %d/%d trips\n",
              label, out.speed.Mean(), out.mean_travel_time_s,
              out.completed_trips, out.spawned_trips + out.unspawned_trips);
  return out;
}

}  // namespace

int main() {
  using namespace ovs;

  data::Dataset city = data::BuildDataset(data::HangzhouConfig());
  std::printf("city '%s': %d links, %d OD pairs\n", city.name.c_str(),
              city.net.num_links(), city.num_od());

  // Step 1: recover the TOD from the observed speed (as a planner would —
  // the true demand is never available directly).
  eval::HarnessConfig harness;
  harness.num_train_samples = 8;
  eval::Experiment experiment(&city, harness);
  baselines::OvsEstimator ovs_estimator;
  std::printf("recovering TOD from city-wide speed...\n");
  od::TodTensor recovered =
      ovs_estimator
          .Recover(experiment.context(), experiment.ground_truth().speed)
          .value();
  std::printf("recovered %.0f trips over the horizon\n\n",
              recovered.TotalTrips());

  // Step 2: find the busiest corridor (most OD routes crossing it).
  int busiest = 0;
  double best = -1.0;
  for (int l = 0; l < city.num_links(); ++l) {
    double crossings = 0.0;
    for (int i = 0; i < city.num_od(); ++i) crossings += city.incidence.at(l, i);
    if (crossings > best) {
      best = crossings;
      busiest = l;
    }
  }
  std::printf("busiest corridor: link %d (crossed by %.0f OD routes)\n\n",
              busiest, best);

  // Step 3: counterfactuals on the *rebuilt* traffic system.
  std::printf("scenario analysis (simulating the recovered demand):\n");
  RunScenario(city, recovered, {}, "baseline");

  sim::RoadWork closure;
  closure.link = busiest;
  closure.speed_factor = 0.5;
  closure.closed_lanes = 1;
  RunScenario(city, recovered, {closure}, "road work on busiest link");

  od::TodTensor grown = recovered;
  grown.Scale(1.3);
  RunScenario(city, grown, {}, "demand +30%");

  od::TodTensor reduced = recovered;
  reduced.Scale(0.7);
  RunScenario(city, reduced, {}, "demand -30% (transit shift)");

  std::printf(
      "\nThese counterfactuals are exactly what historical-data prediction "
      "cannot answer (paper §I): they require the recovered TOD plus the "
      "rebuilt TOD->volume->speed system.\n");
  return 0;
}
