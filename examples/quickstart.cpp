// Quickstart: the full OVS loop on the paper's synthetic 3x3 network.
//
// 1. Build a city (road network, regions, OD pairs, ground-truth TOD).
// 2. Simulate the ground truth to obtain the observed city-wide speed.
// 3. Generate training triples and train the OVS mappings (paper Fig. 8).
// 4. Recover the TOD tensor from speed alone and score it.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "baselines/ovs_estimator.h"
#include "data/cities.h"
#include "eval/harness.h"
#include "util/timer.h"

int main() {
  using namespace ovs;

  // --- 1. The city -------------------------------------------------------
  data::DatasetConfig config = data::Synthetic3x3Config();
  data::Dataset city = data::BuildDataset(config);
  std::printf("city '%s': %d intersections, %d links, %d regions, %d OD pairs, "
              "%d intervals of %.0f s\n",
              city.name.c_str(), city.net.num_intersections(),
              city.net.num_links(), city.regions.num_regions(), city.num_od(),
              city.num_intervals(), city.config.interval_s);

  // --- 2. Observe the city (this is all OVS gets to see) -----------------
  eval::HarnessConfig harness_config;
  harness_config.num_train_samples = 16;
  eval::Experiment experiment(&city, harness_config);
  const core::TrainingSample& truth = experiment.ground_truth();
  std::printf("ground truth: %.0f total trips, mean link speed %.2f m/s "
              "(free flow %.2f)\n",
              truth.tod.TotalTrips(), truth.speed.Mean(),
              city.net.link(0).speed_limit_mps);

  // --- 3 & 4. Train OVS and recover the TOD from speed -------------------
  baselines::OvsEstimator ovs;
  Timer timer;
  eval::MethodResult result = experiment.Run(&ovs);
  std::printf("OVS recovered the TOD in %.1f s\n", timer.ElapsedSeconds());
  std::printf("RMSE  tod=%.2f  volume=%.2f  speed=%.2f\n", result.rmse.tod,
              result.rmse.volume, result.rmse.speed);

  // Reference point: how bad is a flat guess at the training mean?
  od::TodTensor flat(city.num_od(), city.num_intervals());
  double mean_cell = 0.0;
  for (const core::TrainingSample& s : experiment.training_data().samples) {
    mean_cell += s.tod.mat().Mean();
  }
  mean_cell /= experiment.training_data().samples.size();
  for (int i = 0; i < city.num_od(); ++i) {
    for (int t = 0; t < city.num_intervals(); ++t) flat.at(i, t) = mean_cell;
  }
  eval::RmseTriple flat_score = experiment.Score(flat);
  std::printf("flat-guess reference: tod=%.2f volume=%.2f speed=%.2f\n",
              flat_score.tod, flat_score.volume, flat_score.speed);
  return 0;
}
